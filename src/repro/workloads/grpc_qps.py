"""gRPC QPS surrogate: the multi-threaded latency workload (§5.3).

The paper's scenario: client and server are each one process with two
threads; each client thread opens 10 channels with 4 outstanding messages
(40 outstanding per client thread); the server is pinned to cores 2 and 3
and the background revocation thread is deliberately *not* pinned, so it
competes with the server for CPU (§5.3, §7.7). Throughput and latency
percentiles are measured over a fixed duration.

The surrogate runs two server threads, each a closed loop with a fixed
number of outstanding requests: when a request completes, the next one is
(virtually) already queued, so request latency is queueing plus service —
a revocation stall on either server core inflates the latency of every
queued request behind it, which is how stop-the-world pauses and the mrs
back-pressure blow up the 99.9th percentile (§5.3's "transactions stalled
across two revocation epochs").

Requests also route capabilities through kernel hoards (asynchronous
send machinery, §4.4), so the STW root scan has real kernel-side work.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Generator

from repro.alloc.quarantine import QuarantinePolicy
from repro.machine.capability import Capability
from repro.machine.costs import CYCLES_PER_SECOND
from repro.workloads.base import Workload, ThreadBody

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulation import AppContext

#: Paper-scale server heap (table 2: gRPC QPS mean alloc 340 MiB).
PAPER_HEAP_BYTES = 340 << 20

#: Outstanding messages per server thread (10 channels x 4 per channel,
#: split across 2 threads -> 20 in flight each).
OUTSTANDING_PER_THREAD = 20


class GrpcQpsWorkload(Workload):
    """Two-thread asynchronous request/response server."""

    name = "grpc-qps"

    def __init__(
        self,
        duration_seconds: float = 1.5,
        scale: int = 32,
        seed: int = 11,
    ) -> None:
        self.duration_cycles = int(duration_seconds * CYCLES_PER_SECOND)
        self.scale = scale
        self.seed = seed
        self.heap_bytes = PAPER_HEAP_BYTES // scale
        self.quarantine_policy = QuarantinePolicy(min_bytes=(8 << 20) // scale)
        #: Message/arena buffer size.
        self.object_bytes = 3 * 1024
        #: Objects churned per request (serialization arenas, metadata).
        self.churn_per_request = 2
        #: Arena/channel pages capability-stored per request (message
        #: assembly writes pointers throughout the serialization arenas;
        #: see pgbench's store-burst rationale). Applied as MMU side
        #: effects via AppContext.cap_activity.
        self.touched_pages_per_request = max(16, 6400 // scale)
        #: Median service compute per request (cycles; ~0.4 ms).
        self.service_median_cycles = 1_000_000
        self.service_sigma = 0.25
        self.completed = 0
        self.latencies_cycles: list[int] = []

    def thread_bodies(self) -> list[tuple[str, ThreadBody]]:
        return [
            ("grpc-server-0", lambda ctx: self._serve(ctx, 0)),
            ("grpc-server-1", lambda ctx: self._serve(ctx, 1)),
        ]

    def _serve(self, ctx: "AppContext", index: int) -> Generator:
        rng = random.Random(self.seed + index)
        rnd = rng.random
        session: list[Capability] = []
        slot_of: dict[int, Capability] = {}

        def alloc_buffer() -> Generator:
            cap = yield from ctx.malloc(self.object_bytes)
            slot = cap.with_address(cap.base)
            slot_of[cap.base] = slot
            if session:
                target = session[int(rnd() * len(session))]
                yield ctx.core.store_cap(slot, target).cycles
            session.append(cap)

        # Each thread owns half the working set.
        while len(session) * self.object_bytes < self.heap_bytes // 2:
            yield from alloc_buffer()

        # This thread's view of the resident pages, for the store bursts.
        resident_ptes = [
            p for p in ctx.sim.machine.pagetable.mapped_pages() if not p.guard
        ]

        deadline = ctx.now() + self.duration_cycles
        # Closed loop: completion timestamps of the last OUTSTANDING
        # requests; a new request was enqueued the moment slot i-C freed.
        ring: list[int] = [ctx.now()] * OUTSTANDING_PER_THREAD
        i = 0
        hoard_tickets: list[int] = []

        while ctx.now() < deadline:
            enqueue = ring[i % OUTSTANDING_PER_THREAD]

            # Service: churn buffers, touch payloads, async bookkeeping.
            for _ in range(self.churn_per_request):
                victim = session.pop(int(rnd() * len(session)))
                slot_of.pop(victim.base, None)
                yield from ctx.free(victim)
                yield from alloc_buffer()

            cycles = 0
            for _ in range(4):
                holder = session[int(rnd() * len(session))]
                loaded, c = ctx.load_cap_inline(slot_of[holder.base])
                cycles += c
                if loaded is not None and loaded.tag:
                    cycles += ctx.core.load_data(loaded, 512).cycles
            yield cycles

            # Message assembly: the store burst across the arenas (cycle
            # cost inside the service compute; MMU effects here).
            window = self.touched_pages_per_request
            if resident_ptes:
                start = int(rnd() * max(1, len(resident_ptes) - window))
                yield ctx.cap_activity(resident_ptes[start : start + window])

            # Asynchronous completion queue: park a response capability in
            # the kernel (aio/kqueue-style hoard, §4.4) and retire an old one.
            ticket = ctx.stash_in_kernel(f"grpc-cq-{index}", session[-1])
            hoard_tickets.append(ticket)
            if len(hoard_tickets) > 64:
                ctx.retrieve_from_kernel(f"grpc-cq-{index}", hoard_tickets.pop(0))

            yield int(rng.lognormvariate(0.0, self.service_sigma) * self.service_median_cycles)

            done = ctx.now()
            latency = done - enqueue
            ctx.record_latency(f"rpc{index}", enqueue, done)
            self.latencies_cycles.append(latency)
            ring[i % OUTSTANDING_PER_THREAD] = done
            i += 1
            self.completed += 1

    @property
    def throughput_qps(self) -> float:
        return self.completed / (self.duration_cycles / CYCLES_PER_SECOND)
