"""Allocation-trace record and replay.

CHERIvoke's limit study was driven by allocation traces of real programs;
this module provides the same methodology for the simulator: record the
operation stream of any workload (allocations, frees, capability traffic,
compute) into a compact, serializable :class:`AllocationTrace`, and
replay it later — under a different revocation strategy, policy, or cost
model — with the guarantee that the allocator sees the identical request
sequence.

Traces also interoperate with the outside world: :func:`AllocationTrace.to_jsonl`
/ :func:`AllocationTrace.from_jsonl` use one JSON object per event, so
traces captured from real allocators (e.g. via malloc interposition) can
be converted and replayed against the simulated revokers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, TYPE_CHECKING, Generator

from repro.errors import ConfigError
from repro.machine.costs import GRANULE_BYTES
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulation import AppContext

#: Event opcodes. Handles are trace-local object ids, not addresses —
#: replay maps them to whatever the allocator returns this time.
OP_MALLOC = "malloc"      # (handle, size)
OP_FREE = "free"          # (handle,)
OP_STORE_CAP = "store"    # (dst_handle, slot, src_handle)
OP_LOAD_CAP = "load"      # (src_handle, slot)
OP_LOAD_DATA = "read"     # (handle, nbytes)
OP_STORE_DATA = "write"   # (handle, nbytes)
OP_COMPUTE = "compute"    # (cycles,)
OP_IDLE = "idle"          # (cycles,)


@dataclass(frozen=True)
class TraceEvent:
    op: str
    args: tuple[int, ...]

    def to_json(self) -> str:
        return json.dumps({"op": self.op, "args": list(self.args)})

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        data = json.loads(line)
        return cls(data["op"], tuple(int(a) for a in data["args"]))


@dataclass
class AllocationTrace:
    """An ordered stream of allocator/memory events."""

    events: list[TraceEvent] = field(default_factory=list)

    # --- Building --------------------------------------------------------------

    def malloc(self, handle: int, size: int) -> None:
        self.events.append(TraceEvent(OP_MALLOC, (handle, size)))

    def free(self, handle: int) -> None:
        self.events.append(TraceEvent(OP_FREE, (handle,)))

    def store_cap(self, dst: int, slot: int, src: int) -> None:
        self.events.append(TraceEvent(OP_STORE_CAP, (dst, slot, src)))

    def load_cap(self, src: int, slot: int) -> None:
        self.events.append(TraceEvent(OP_LOAD_CAP, (src, slot)))

    def load_data(self, handle: int, nbytes: int) -> None:
        self.events.append(TraceEvent(OP_LOAD_DATA, (handle, nbytes)))

    def store_data(self, handle: int, nbytes: int) -> None:
        self.events.append(TraceEvent(OP_STORE_DATA, (handle, nbytes)))

    def compute(self, cycles: int) -> None:
        self.events.append(TraceEvent(OP_COMPUTE, (cycles,)))

    def idle(self, cycles: int) -> None:
        self.events.append(TraceEvent(OP_IDLE, (cycles,)))

    def __len__(self) -> int:
        return len(self.events)

    # --- Validation -------------------------------------------------------------

    def validate(self) -> None:
        """Check trace well-formedness: handles are malloc'd before use,
        never double-freed, and sizes are positive."""
        live: set[int] = set()
        ever: set[int] = set()
        for i, ev in enumerate(self.events):
            if ev.op == OP_MALLOC:
                handle, size = ev.args
                if handle in ever:
                    raise ConfigError(f"event {i}: handle {handle} reused")
                if size <= 0:
                    raise ConfigError(f"event {i}: non-positive size {size}")
                live.add(handle)
                ever.add(handle)
            elif ev.op == OP_FREE:
                (handle,) = ev.args
                if handle not in live:
                    raise ConfigError(f"event {i}: free of dead handle {handle}")
                live.discard(handle)
            elif ev.op in (OP_STORE_CAP, OP_LOAD_CAP, OP_LOAD_DATA, OP_STORE_DATA):
                holder = ev.args[0]
                if holder not in live:
                    raise ConfigError(
                        f"event {i}: {ev.op} through dead handle {holder}"
                    )

    # --- Serialization -------------------------------------------------------------

    def to_jsonl(self, stream: IO[str]) -> None:
        for ev in self.events:
            stream.write(ev.to_json() + "\n")

    @classmethod
    def from_jsonl(cls, lines: Iterable[str]) -> "AllocationTrace":
        return cls([TraceEvent.from_json(line) for line in lines if line.strip()])

    def save(self, path: str | Path) -> None:
        with open(path, "w") as f:
            self.to_jsonl(f)

    @classmethod
    def load(cls, path: str | Path) -> "AllocationTrace":
        with open(path) as f:
            return cls.from_jsonl(f)

    # --- Statistics -----------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.op] = out.get(ev.op, 0) + 1
        return out


class TraceWorkload(Workload):
    """Replay an :class:`AllocationTrace` through the full stack.

    Handles map to live capabilities at replay time; capability stores
    land in the destination object's slot granules, so the replayed
    address space carries the same capability graph shape the trace
    recorded — and the revokers see equivalent work.
    """

    name = "trace-replay"

    def __init__(
        self,
        trace: AllocationTrace,
        name: str | None = None,
        quarantine_policy=None,
    ) -> None:
        trace.validate()
        self.trace = trace
        if name is not None:
            self.name = name
        self.quarantine_policy = quarantine_policy
        self.replayed_events = 0
        self.stale_loads = 0

    def run(self, ctx: "AppContext") -> Generator:
        caps = {}
        for ev in self.trace.events:
            op = ev.op
            if op == OP_MALLOC:
                handle, size = ev.args
                caps[handle] = (yield from ctx.malloc(size))
            elif op == OP_FREE:
                (handle,) = ev.args
                yield from ctx.free(caps.pop(handle))
            elif op == OP_STORE_CAP:
                dst, slot, src = ev.args
                dst_cap = caps[dst]
                src_cap = caps.get(src)
                if src_cap is not None:
                    addr = dst_cap.base + (slot * GRANULE_BYTES) % max(
                        GRANULE_BYTES, dst_cap.length
                    )
                    yield ctx.core.store_cap(dst_cap.with_address(addr), src_cap).cycles
            elif op == OP_LOAD_CAP:
                src, slot = ev.args
                src_cap = caps[src]
                addr = src_cap.base + (slot * GRANULE_BYTES) % max(
                    GRANULE_BYTES, src_cap.length
                )
                loaded, cycles = ctx.load_cap_inline(src_cap.with_address(addr))
                if loaded is None or not loaded.tag:
                    self.stale_loads += 1
                yield max(1, cycles)
            elif op == OP_LOAD_DATA:
                handle, nbytes = ev.args
                cap = caps[handle]
                yield ctx.core.load_data(cap, min(nbytes, cap.length)).cycles
            elif op == OP_STORE_DATA:
                handle, nbytes = ev.args
                cap = caps[handle]
                yield ctx.core.store_data(cap, min(nbytes, cap.length)).cycles
            elif op == OP_COMPUTE:
                yield ev.args[0]
            elif op == OP_IDLE:
                yield from ctx.idle(ev.args[0])
            else:  # pragma: no cover - validate() rejects unknown ops upstream
                raise ConfigError(f"unknown trace op {op!r}")
            self.replayed_events += 1


def synthesize_trace(
    objects: int = 200,
    churn: int = 1000,
    size_choices: tuple[int, ...] = (64, 256, 1024),
    compute_per_op: int = 2000,
    seed: int = 1,
) -> AllocationTrace:
    """Generate a well-formed random trace (a convenience for tests,
    examples, and fuzzing the replayer)."""
    import random

    rng = random.Random(seed)
    trace = AllocationTrace()
    next_handle = 0
    live: list[int] = []
    for _ in range(objects):
        trace.malloc(next_handle, rng.choice(size_choices))
        live.append(next_handle)
        next_handle += 1
    for _ in range(churn):
        roll = rng.random()
        if roll < 0.25 and len(live) > 2:
            victim = live.pop(rng.randrange(len(live)))
            trace.free(victim)
        elif roll < 0.5:
            trace.malloc(next_handle, rng.choice(size_choices))
            live.append(next_handle)
            next_handle += 1
        elif roll < 0.65:
            trace.store_cap(rng.choice(live), rng.randrange(4), rng.choice(live))
        elif roll < 0.8:
            trace.load_cap(rng.choice(live), rng.randrange(4))
        elif roll < 0.9:
            trace.load_data(rng.choice(live), 64)
        else:
            trace.compute(compute_per_op)
    for handle in live:
        trace.free(handle)
    return trace


class RecordingContext:
    """A transparent proxy over :class:`~repro.core.simulation.AppContext`
    that records the allocator-visible event stream of a live workload
    into an :class:`AllocationTrace` while forwarding everything to the
    real context.

    Capability identities are mapped to stable handles at record time;
    loads/stores are recorded by (handle, slot). Only events the trace
    vocabulary expresses are captured: direct ``ctx.core`` accesses pass
    through unrecorded (record-mode workloads should use the ctx API).

    Usage::

        trace = AllocationTrace()
        workload = RecordingWorkload(inner_workload, trace)
        run_experiment(workload, RevokerKind.NONE)
        trace.save("workload.jsonl")
    """

    def __init__(self, ctx: "AppContext", trace: AllocationTrace) -> None:
        self._ctx = ctx
        self.trace = trace
        self._handles: dict[int, int] = {}  # cap.base -> handle
        self._next = 0

    # Anything not intercepted forwards to the real context.
    def __getattr__(self, name):
        return getattr(self._ctx, name)

    def _handle_for(self, cap) -> int | None:
        return self._handles.get(cap.base)

    def malloc(self, nbytes: int) -> Generator:
        cap = yield from self._ctx.malloc(nbytes)
        handle = self._next
        self._next += 1
        self._handles[cap.base] = handle
        self.trace.malloc(handle, nbytes)
        return cap

    def free(self, cap) -> Generator:
        handle = self._handles.pop(cap.base, None)
        if handle is not None:
            self.trace.free(handle)
        yield from self._ctx.free(cap)

    def store_cap(self, dst, value) -> Generator:
        dh = self._handle_for(dst)
        vh = self._handle_for(value)
        if dh is not None and vh is not None:
            slot = (dst.address - dst.base) // GRANULE_BYTES
            self.trace.store_cap(dh, slot, vh)
        yield from self._ctx.store_cap(dst, value)

    def load_cap(self, cap) -> Generator:
        handle = self._handle_for(cap)
        if handle is not None:
            slot = (cap.address - cap.base) // GRANULE_BYTES
            self.trace.load_cap(handle, slot)
        value = yield from self._ctx.load_cap(cap)
        return value

    def load_data(self, cap, nbytes: int) -> Generator:
        handle = self._handle_for(cap)
        if handle is not None:
            self.trace.load_data(handle, nbytes)
        yield from self._ctx.load_data(cap, nbytes)

    def store_data(self, cap, nbytes: int) -> Generator:
        handle = self._handle_for(cap)
        if handle is not None:
            self.trace.store_data(handle, nbytes)
        yield from self._ctx.store_data(cap, nbytes)

    def compute(self, cycles: int) -> Generator:
        self.trace.compute(cycles)
        yield from self._ctx.compute(cycles)

    def idle(self, cycles: int) -> Generator:
        self.trace.idle(int(cycles))
        yield from self._ctx.idle(cycles)


class RecordingWorkload(Workload):
    """Wrap any workload so its ctx-level events are recorded."""

    def __init__(self, inner: Workload, trace: AllocationTrace) -> None:
        self.inner = inner
        self.trace = trace
        self.name = f"record({inner.name})"
        self.quarantine_policy = getattr(inner, "quarantine_policy", None)

    def thread_bodies(self):
        return [
            (name, lambda ctx, body=body: body(RecordingContext(ctx, self.trace)))
            for name, body in self.inner.thread_bodies()
        ]
