"""Workload interface.

A workload is a deterministic (seeded) program written against the
:class:`repro.core.simulation.AppContext` API — the simulated process's
view of malloc/free, capability loads and stores, data accesses, compute,
and idle time. The same workload object produces the same operation trace
under every revocation strategy (the paper runs identical binaries under
every condition, §5); only the architectural events differ.

Single-threaded workloads implement :meth:`run`; multi-threaded ones
override :meth:`thread_bodies` (gRPC QPS runs a two-thread server, §5.3).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.simulation import AppContext

#: A named thread body: the simulation calls the factory with the thread's
#: own AppContext and schedules the resulting generator.
ThreadBody = Callable[["AppContext"], Generator]


class Workload(abc.ABC):
    """Base class for simulated programs."""

    #: Short name used in results and figures.
    name: str = "workload"
    #: Scaled workloads recommend a quarantine policy whose 8 MiB floor is
    #: scaled along with their heap; None means the paper defaults apply.
    quarantine_policy = None
    #: True when the workload keeps all execution state on picklable
    #: objects (not generator frames) and parks at snapshot barriers, so
    #: a checkpoint taken mid-run can be restored with fresh generators.
    #: See docs/SNAPSHOT.md; ChurnWorkload opts in, the external-protocol
    #: workloads (pgbench, gRPC) do not.
    supports_snapshot = False

    def thread_bodies(self) -> list[tuple[str, ThreadBody]]:
        """(name, body) for each application thread. Default: one thread
        running :meth:`run`."""
        return [(self.name, self.run)]

    def run(self, ctx: "AppContext") -> Generator:
        """Single-threaded body; override this or :meth:`thread_bodies`."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement run() or thread_bodies()"
        )
        yield  # pragma: no cover - makes this a generator if subclass calls super
