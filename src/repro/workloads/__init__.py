"""Workloads: SPEC CPU2006 INT surrogates, pgbench, gRPC QPS, and
adversarial use-after-free scenarios."""

from repro.workloads import spec
from repro.workloads.adversarial import AttackReport, UafAttacker
from repro.workloads.base import Workload
from repro.workloads.churn import ChurnProfile, ChurnWorkload, SizeMix
from repro.workloads.grpc_qps import GrpcQpsWorkload
from repro.workloads.microbench import (
    FragmentationStress,
    PingPongAllocator,
    PointerGraphTraversal,
)
from repro.workloads.pgbench import PgBenchWorkload
from repro.workloads.trace import AllocationTrace, TraceWorkload, synthesize_trace

__all__ = [
    "AttackReport",
    "ChurnProfile",
    "ChurnWorkload",
    "FragmentationStress",
    "GrpcQpsWorkload",
    "AllocationTrace",
    "PgBenchWorkload",
    "PingPongAllocator",
    "PointerGraphTraversal",
    "TraceWorkload",
    "SizeMix",
    "UafAttacker",
    "Workload",
    "spec",
    "synthesize_trace",
]
