"""The generic heap-churn engine behind the SPEC surrogates.

A churn workload builds a live heap of pointer-bearing objects, then
cycles address space through the allocator — free one object, allocate a
replacement, rewire some pointers, chase some pointers, touch some data,
compute — until a target volume of memory has been freed. The knobs in
:class:`ChurnProfile` (live heap size, churn volume, object size mix,
pointer density, access rates) are what distinguish ``omnetpp`` from
``gobmk``: the revokers never see benchmark names, only the allocation
and capability traffic the profile induces.

Objects carry their capability slots in their own first granules, so
capability density per page — what the sweep pays for — follows from the
size mix and slot counts. Freed objects' slots keep their (stale) tagged
capabilities in memory until revocation clears them or reuse zeroes them,
exactly the population a sweep must test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.alloc.quarantine import QuarantinePolicy
from repro.machine.capability import Capability

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.core.simulation import AppContext
from repro.machine.costs import GRANULE_BYTES
from repro.machine.scheduler import Block
from repro.workloads.base import Workload


@dataclass(frozen=True)
class SizeMix:
    """A discrete object-size distribution (bytes, relative weight)."""

    sizes: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ValueError("sizes and weights must be same nonzero length")

    def mean(self) -> float:
        total = sum(self.weights)
        return sum(s * w for s, w in zip(self.sizes, self.weights)) / total

    def sample(self, rng: random.Random) -> int:
        """Draw one size. Hot path: manual inverse-CDF over the (few)
        buckets beats random.choices' per-call setup."""
        cdf = getattr(self, "_cdf", None)
        if cdf is None:
            total = sum(self.weights)
            acc, cdf = 0.0, []
            for w in self.weights:
                acc += w / total
                cdf.append(acc)
            object.__setattr__(self, "_cdf", cdf)
        x = rng.random()
        for size, edge in zip(self.sizes, cdf):
            if x <= edge:
                return size
        return self.sizes[-1]


@dataclass
class ChurnProfile:
    """Everything that characterizes one synthetic batch workload."""

    name: str
    #: Target live heap, bytes (already scaled).
    heap_bytes: int
    #: Total bytes to push through free() during churn (already scaled).
    churn_bytes: int
    size_mix: SizeMix
    #: Capability slots per object (placed in its leading granules).
    pointer_slots: int = 2
    #: Capability stores per churn iteration (pointer rewiring rate).
    cap_stores_per_iter: int = 2
    #: Capability loads per churn iteration (pointer-chase rate).
    cap_loads_per_iter: int = 2
    #: Data bytes read when a chased pointer is dereferenced.
    deref_bytes: int = 64
    #: Plain data accesses per iteration: (loads, stores, bytes each).
    data_accesses_per_iter: tuple[int, int, int] = (4, 2, 64)
    #: Pure compute cycles per iteration (sets the memory-churn *rate*
    #: and hence revocations/second; table 2).
    compute_per_iter: int = 2_000
    #: Extra data+compute iterations with no allocator activity, run
    #: after the churn phase. Benchmarks like bzip2 and sjeng are long
    #: computations over a heap they barely churn; this phase gives them
    #: their compute-dominated character.
    steady_iterations: int = 0
    seed: int = 1

    def iterations(self) -> int:
        return max(1, int(self.churn_bytes / self.size_mix.mean()))


class _Obj:
    """A live heap object with its capability slot cursors precomputed
    (slot capabilities are reused across iterations — deriving a fresh
    cursor per access is the simulator's hottest path otherwise)."""

    __slots__ = ("cap", "size", "nslots", "slot_caps")

    def __init__(self, cap: Capability, size: int, nslots: int) -> None:
        self.cap = cap
        self.size = size
        self.nslots = nslots
        self.slot_caps = tuple(
            cap.with_address(cap.base + i * GRANULE_BYTES) for i in range(nslots)
        )


class ChurnTask:
    """Resumable execution state for :meth:`ChurnWorkload.run`.

    Everything the churn program needs across yields lives here rather
    than in generator frame locals, because generator frames cannot be
    pickled: a snapshot captures this object (it hangs off the workload,
    which hangs off the simulation), and a restored run re-enters
    :meth:`ChurnWorkload.run` with a *fresh* generator that picks up from
    this state bit-identically.
    """

    __slots__ = (
        "rng", "objs", "live_bytes", "freed", "iteration", "phase",
        "steady_left",
    )

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.objs: list[_Obj] = []
        self.live_bytes = 0
        self.freed = 0
        self.iteration = 0
        #: "build" -> "churn" -> "steady" -> "done".
        self.phase = "build"
        self.steady_left = 0


class ChurnWorkload(Workload):
    """A single-threaded batch program driven by a :class:`ChurnProfile`."""

    supports_snapshot = True

    def __init__(
        self,
        profile: ChurnProfile,
        quarantine_policy: QuarantinePolicy | None = None,
    ) -> None:
        self.profile = profile
        self.name = profile.name
        self.quarantine_policy = quarantine_policy
        #: Filled in after a run, for tests: iterations actually executed.
        self.iterations_run = 0
        self.stale_loads = 0
        #: Live execution state; created on first entry to :meth:`run` and
        #: kept on self so checkpoints capture it.
        self._task: ChurnTask | None = None

    # --- Object helpers ---------------------------------------------------------

    def _alloc_obj(self, ctx: "AppContext", rng: random.Random, objs: list[_Obj]) -> Generator:
        size = self.profile.size_mix.sample(rng)
        cap = yield from ctx.malloc(size)
        nslots = min(self.profile.pointer_slots, size // GRANULE_BYTES)
        obj = _Obj(cap, size, nslots)
        # Wire this object into the graph: point its slots at random
        # existing objects (establishes capability density).
        cycles = 0
        nobjs = len(objs)
        for i in range(nslots):
            if not nobjs:
                break
            target = objs[int(rng.random() * nobjs)]
            cycles += ctx.core.store_cap(obj.slot_caps[i], target.cap).cycles
        if cycles:
            yield cycles
        objs.append(obj)
        return obj

    # --- The program -----------------------------------------------------------------

    def run(self, ctx: "AppContext") -> Generator:
        profile = self.profile
        task = self._task
        if task is None:
            task = self._task = ChurnTask(random.Random(profile.seed))

        # Phase dispatch loop. One pass = one unit of work (an allocation
        # in the build phase, an iteration in the churn/steady phases), so
        # a resumed run re-enters exactly at a unit boundary. The snapshot
        # park sits at the loop top: both the straight path (generator
        # resumes at the Block yield, `continue`s) and the resumed path
        # (fresh generator enters the loop) perform one `due()` check
        # before the next unit — identical control flow, identical RNG.
        while True:
            snap = ctx.snapshot
            if snap is not None and snap.due():
                yield Block(snap.barrier)
                continue
            if task.phase == "build":
                # Build phase: grow the live heap to its target.
                if task.live_bytes < profile.heap_bytes:
                    obj = yield from self._alloc_obj(ctx, task.rng, task.objs)
                    task.live_bytes += obj.size
                else:
                    task.phase = "churn"
            elif task.phase == "churn":
                if task.freed < profile.churn_bytes and len(task.objs) > 2:
                    task.iteration += 1
                    yield from self._churn_iteration(ctx, task)
                else:
                    task.phase = "steady"
                    task.steady_left = profile.steady_iterations
            elif task.phase == "steady":
                # Steady phase: compute and data traffic with no allocator
                # activity (bzip2/sjeng-style compute dominance).
                if task.steady_left > 0:
                    task.steady_left -= 1
                    yield from self._steady_iteration(ctx, task)
                else:
                    task.phase = "done"
            else:
                break

        self.iterations_run = task.iteration

    def _churn_iteration(self, ctx: "AppContext", task: ChurnTask) -> Generator:
        """One churn iteration: free a victim, allocate a replacement,
        rewire pointers, chase pointers, touch data, compute."""
        profile = self.profile
        objs = task.objs
        data_loads, data_stores, data_bytes = profile.data_accesses_per_iter
        rnd = task.rng.random

        # Free a random object; its outgoing capabilities and any
        # capabilities pointing *to* it go stale in memory.
        victim = objs.pop(int(rnd() * len(objs)))
        yield from ctx.free(victim.cap)
        task.freed += victim.size

        # Replace it.
        new_obj = yield from self._alloc_obj(ctx, task.rng, objs)
        ctx.registers.set(task.iteration % 8, new_obj.cap)

        cycles = 0
        nobjs = len(objs)
        # Pointer rewiring: store capabilities into random slots.
        for _ in range(profile.cap_stores_per_iter):
            holder = objs[int(rnd() * nobjs)]
            if holder.nslots == 0:
                continue
            target = objs[int(rnd() * nobjs)]
            dst = holder.slot_caps[int(rnd() * holder.nslots)]
            cycles += ctx.core.store_cap(dst, target.cap).cycles
        if cycles:
            yield cycles

        # Pointer chase: load capabilities (the barriered path) and
        # dereference the live ones. Cycles accumulate into one yield;
        # the fault-retry loop charges foreground handling inline.
        cycles = 0
        for _ in range(profile.cap_loads_per_iter):
            holder = objs[int(rnd() * nobjs)]
            if holder.nslots == 0:
                continue
            src = holder.slot_caps[int(rnd() * holder.nslots)]
            loaded, load_cycles = ctx.load_cap_inline(src)
            cycles += load_cycles
            # Draw the offset unconditionally so the RNG stream (and
            # hence the whole trace) is identical whether or not the
            # slot was revoked under this strategy.
            off_frac = rnd()
            if loaded is None or not loaded.tag:
                self.stale_loads += 1
                continue
            nbytes = min(profile.deref_bytes, loaded.length)
            if nbytes > 0:
                # Dereference at a random offset: the touched-line set
                # scales with heap size, not object count.
                off = int(off_frac * (loaded.length - nbytes + 1))
                cycles += ctx.core.load_data(
                    loaded.with_address(loaded.base + off), nbytes
                ).cycles
        if cycles:
            yield cycles

        # Plain data traffic and compute.
        cycles = 0
        for _ in range(data_loads):
            obj = objs[int(rnd() * nobjs)]
            nbytes = min(data_bytes, obj.size)
            off = int(rnd() * (obj.size - nbytes + 1))
            cycles += ctx.core.load_data(
                obj.cap.with_address(obj.cap.base + off), nbytes
            ).cycles
        for _ in range(data_stores):
            obj = objs[int(rnd() * nobjs)]
            nbytes = min(data_bytes, obj.size)
            start = obj.nslots * GRANULE_BYTES
            room = obj.size - start - nbytes
            if room > 0:
                start += int(rnd() * room) & ~15
            if start + nbytes <= obj.size:
                dst = obj.cap.with_address(obj.cap.base + start)
                cycles += ctx.core.store_data(dst, nbytes).cycles
        yield cycles + profile.compute_per_iter

    def _steady_iteration(self, ctx: "AppContext", task: ChurnTask) -> Generator:
        profile = self.profile
        objs = task.objs
        data_loads, _, data_bytes = profile.data_accesses_per_iter
        rnd = task.rng.random
        cycles = profile.compute_per_iter
        nobjs = len(objs)
        for _ in range(data_loads):
            obj = objs[int(rnd() * nobjs)]
            nbytes = min(data_bytes, obj.size)
            off = int(rnd() * (obj.size - nbytes + 1))
            cycles += ctx.core.load_data(
                obj.cap.with_address(obj.cap.base + off), nbytes
            ).cycles
        yield cycles
