"""pgbench surrogate: the paper's interactive workload (§5.2).

A PostgreSQL server process runs pure-capability with the revocation shim;
the pgbench client drives serial transactions against it. What the
evaluation measures is the *server-side* picture: per-transaction
latencies (fig. 7's CDF, table 1's percentiles), wall/CPU overheads
(fig. 5), and bus traffic (fig. 6).

The surrogate models one server thread whose address space has two parts:

- a **session heap** of tuple/row buffers churned by transactions: 24
  buffers allocated and freed per transaction (the paper's pgbench frees
  ~340 KiB per transaction against a 23 MiB heap — a 2500:1
  freed-to-allocated ratio, table 2);
- a **shared-buffers region**: the capability-dense resident set
  (PostgreSQL's buffer pool, catalog caches, autovacuum state) that every
  sweep must visit even though the session heap is small — this is why
  the paper's pgbench RSS is dominated by non-worker memory (§5.2) and
  why its stop-the-world sweeps take tens of milliseconds.

Each transaction also performs a **capability store burst** across a
window of the resident set (buffer headers, LRU lists, and index pages
are pointer-dense and updated constantly). The burst's cycle cost lives
inside the transaction's compute block; its MMU side effects
(capability-dirty and re-dirty bits, §4.2) are applied via
:meth:`AppContext.cap_activity`. This store rate is what differentiates
the strategies: pages stored-to during Cornucopia's concurrent phase must
be re-swept with the world stopped, while Reloaded never revisits
(§5.2's fig. 6 discussion).

Between transactions the server idles (client round trip), so the process
is not CPU bound — the idle windows that let pauses "hide" (§5.2) exist.
In *rate* mode (table 1), transactions start on an a-priori schedule and
latency excludes schedule lag; the default serial mode is subject to
coordinated omission, exactly as the paper notes [49].
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Generator

from repro.alloc.quarantine import QuarantinePolicy
from repro.machine.capability import Capability
from repro.machine.costs import CYCLES_PER_SECOND, GRANULE_BYTES, PAGE_BYTES
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulation import AppContext

#: Paper-scale session heap (table 2: mean 23 MiB allocated for pgbench).
PAPER_HEAP_BYTES = 23 << 20

#: Paper-scale shared-buffers-like resident set the sweep must cover.
PAPER_SHARED_BYTES = 32 << 20

#: Default transaction count (the paper runs 170,000; the default here is
#: sized for a few-minute simulation — pass transactions=... for more).
DEFAULT_TRANSACTIONS = 4000


class PgBenchWorkload(Workload):
    """Serial (or rate-scheduled) transaction processing."""

    name = "pgbench"

    def __init__(
        self,
        transactions: int = DEFAULT_TRANSACTIONS,
        rate_tps: float | None = None,
        scale: int = 2,
        seed: int = 7,
    ) -> None:
        """``rate_tps``: transactions per second for --rate mode (table 1);
        None runs serially (unscheduled)."""
        self.transactions = transactions
        self.rate_tps = rate_tps
        self.scale = scale
        self.seed = seed
        self.heap_bytes = PAPER_HEAP_BYTES // scale
        self.shared_bytes = PAPER_SHARED_BYTES // scale
        #: High-rate revocation regime (table 2: pgbench revokes ~26x more
        #: often per freed byte than SPEC): the floor scales harder than
        #: the heap so epochs run every handful of transactions.
        self.quarantine_policy = QuarantinePolicy(min_bytes=(2 << 20) // scale)
        #: Tuple buffer size (rows, index nodes); granule multiple. At
        #: aggressive scales the buffers shrink with the heap so the
        #: session still holds a realistic object population.
        self.object_bytes = 7 * 1024 if scale <= 4 else max(64, (7 * 1024 * 2) // scale)
        #: Buffers churned per transaction (~170 KiB/tx at scale 2,
        #: mirroring the paper's ~340 KiB/tx at full size).
        self.churn_per_tx = 24
        #: Resident pages capability-stored per transaction (the burst).
        self.touched_pages_per_tx = 4500 // max(1, scale // 2)
        #: Baseline busy time: lognormal with this median (cycles; ~2.8 ms).
        self.busy_median_cycles = 7_000_000
        self.busy_sigma = 0.22
        #: Fraction of transactions hitting a slow path (vacuum interplay,
        #: cold caches) and its multiplier — the baseline's own long tail.
        self.slow_fraction = 0.002
        self.slow_multiplier = 8.0
        #: Mean idle (client round-trip + think) between transactions,
        #: exponential (~3 ms; server on-core roughly half of wall, §5.2).
        self.idle_mean_cycles = 3_000_000
        self.completed = 0

    # --- The server loop --------------------------------------------------------

    def run(self, ctx: "AppContext") -> Generator:
        rng = random.Random(self.seed)
        rnd = rng.random
        session: list[Capability] = []
        slots_of: dict[int, tuple[Capability, ...]] = {}

        def alloc_buffer() -> Generator:
            cap = yield from ctx.malloc(self.object_bytes)
            slots = tuple(
                cap.with_address(cap.base + i * GRANULE_BYTES) for i in range(2)
            )
            slots_of[cap.base] = slots
            cycles = 0
            if session:
                target = session[int(rnd() * len(session))]
                cycles += ctx.core.store_cap(slots[0], target).cycles
            if cycles:
                yield cycles
            session.append(cap)

        # Shared buffers: one long-lived capability-dense region, mapped
        # directly (PostgreSQL's buffer pool is shared memory, not malloc
        # heap, so it does not count toward the mrs quarantine policy).
        # One capability per page makes every page capability-dirty
        # forever (§4.5: pages never become clean again).
        shared_cap, _ = ctx.sim.kernel.address_space.mmap(self.shared_bytes)
        yield ctx.sim.machine.costs.malloc_slow_extra
        shared_pages = self.shared_bytes // PAGE_BYTES
        cycles = 0
        for vpn_off in range(shared_pages):
            dst = shared_cap.with_address(shared_cap.base + vpn_off * PAGE_BYTES)
            cycles += ctx.core.store_cap(dst, shared_cap).cycles
            if cycles > 100_000:
                yield cycles
                cycles = 0
        if cycles:
            yield cycles

        # Warm the session heap (the paper discards a warmup run).
        while len(session) * self.object_bytes < self.heap_bytes:
            yield from alloc_buffer()

        # Resident PTEs for the store bursts (contiguous bump layout).
        resident_ptes = [
            p for p in ctx.sim.machine.pagetable.mapped_pages() if not p.guard
        ]

        interval = None
        if self.rate_tps is not None:
            interval = int(CYCLES_PER_SECOND / self.rate_tps)
        next_start = ctx.now()

        for _ in range(self.transactions):
            if interval is not None:
                # Scheduled arrivals: wait for the schedule; latency below
                # ignores schedule lag (table 1's methodology).
                now = ctx.now()
                if now < next_start:
                    yield from ctx.idle(next_start - now)
                next_start += interval
            begin = ctx.now()

            # Transaction body: churn tuple buffers.
            for _ in range(self.churn_per_tx):
                victim_idx = int(rnd() * len(session))
                victim = session.pop(victim_idx)
                slots_of.pop(victim.base, None)
                yield from ctx.free(victim)
                yield from alloc_buffer()

            # Pointer chases: session slots and shared buffer headers
            # (these are the loads Reloaded's barrier intercepts).
            cycles = 0
            for _ in range(8):
                holder = session[int(rnd() * len(session))]
                slots = slots_of[holder.base]
                loaded, c = ctx.load_cap_inline(slots[0])
                cycles += c
                off_frac = rnd()  # drawn unconditionally: trace parity
                if loaded is not None and loaded.tag:
                    nbytes = min(256, loaded.length)
                    off = int(off_frac * max(1, loaded.length - nbytes))
                    cycles += ctx.core.load_data(
                        loaded.with_address(loaded.base + off), nbytes
                    ).cycles
            for _ in range(2):
                page = int(rnd() * shared_pages)
                src = shared_cap.with_address(shared_cap.base + page * PAGE_BYTES)
                loaded, c = ctx.load_cap_inline(src)
                cycles += c
            yield cycles

            # The store burst over a window of the resident set: cycle
            # cost is inside the compute block below; MMU dirty-tracking
            # side effects are applied here (§4.2).
            window = self.touched_pages_per_tx
            if window and resident_ptes:
                start = int(rnd() * max(1, len(resident_ptes) - window))
                yield ctx.cap_activity(resident_ptes[start : start + window])

            busy = rng.lognormvariate(0.0, self.busy_sigma) * self.busy_median_cycles
            if rnd() < self.slow_fraction:
                busy *= self.slow_multiplier
            yield int(busy)

            end = ctx.now()
            ctx.record_latency("tx", begin, end)
            self.completed += 1

            if interval is None:
                # Serial mode: client round trip before the next request.
                yield from ctx.idle(int(rng.expovariate(1.0) * self.idle_mean_cycles))


def workload(
    transactions: int = DEFAULT_TRANSACTIONS,
    rate_tps: float | None = None,
    scale: int = 2,
    seed: int = 7,
) -> PgBenchWorkload:
    """Convenience constructor mirroring :func:`repro.workloads.spec.workload`."""
    return PgBenchWorkload(transactions, rate_tps, scale, seed)
