"""Adversarial workloads: use-after-free attack scenarios.

These drive the security property the whole system exists for (§2.2.2):
**use-after-free may read stale data, but use-after-reallocation is
impossible** — by the time freed memory is reused, every capability to it
has been revoked (in memory, registers, and kernel hoards).

:class:`UafAttacker` plays the attacker: it frees victims while *keeping*
capabilities to them in as many places as it can (a heap slot, its
register file, a kernel hoard), then churns the allocator so the freed
addresses get reused, probing its stale capabilities every round. Whether
a probed address has been handed to a new allocation is decided by an
oracle peek at the allocator's live set (a measurement device, not part
of the attack). The outcome is recorded rather than asserted, so tests
check it per strategy:

- under a safety-providing revoker, no stale capability is ever tagged
  once its memory is live again (``uar_hits == 0``);
- under the baseline or paint+sync, stale capabilities alias new
  allocations (``uar_hits > 0``) — the gap revocation closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.alloc.quarantine import QuarantinePolicy
from repro.machine.capability import Capability
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulation import AppContext


@dataclass
class AttackReport:
    """What the attacker managed to do."""

    #: Stale dereferences of not-yet-reused memory (the tolerated UAF
    #: window, §2.2.2).
    uaf_reads: int = 0
    #: Stale dereferences that aliased a *reallocated* object (UAR) —
    #: must be zero under any safety-providing revoker.
    uar_hits: int = 0
    #: Probes that found the capability already revoked (untagged).
    revoked_probes: int = 0
    #: Which hoarding places still held tagged capabilities at UAR time.
    stale_sources: list[str] = field(default_factory=list)


@dataclass
class _Victim:
    base: int
    heap_slot: Capability
    register_index: int
    hoard_ticket: int


class UafAttacker(Workload):
    """Free objects, hoard dangling pointers everywhere, try to use them
    after the allocator reuses the memory."""

    name = "uaf-attacker"

    def __init__(self, rounds: int = 20, churn_objects: int = 100, seed: int = 3) -> None:
        self.rounds = rounds
        self.churn_objects = churn_objects
        self.seed = seed
        self.report = AttackReport()
        #: A small quarantine floor so the attacker's churn actually
        #: drives revocation epochs (and, under paint+sync, dequarantine
        #: without sweeping — the reuse the attack needs).
        self.quarantine_policy = QuarantinePolicy(min_bytes=16 << 10)

    def run(self, ctx: "AppContext") -> Generator:
        size = 256
        report = self.report
        pending: list[_Victim] = []
        slot_objects: list[Capability] = []

        for round_no in range(self.rounds):
            # Create this round's victim and hoard pointers to it in a
            # heap slot, a register, and a kernel subsystem (§4.4).
            victim = yield from ctx.malloc(size)
            stash_obj = yield from ctx.malloc(64)
            slot_objects.append(stash_obj)
            slot = stash_obj.with_address(stash_obj.base)
            yield from ctx.store_cap(slot, victim)
            reg = round_no % 8
            ctx.registers.set(reg, victim)
            ticket = ctx.stash_in_kernel("attack", victim)
            yield from ctx.free(victim)
            pending.append(_Victim(victim.base, slot, reg, ticket))

            # Immediate UAF: stale pointers work until revocation runs.
            probe = ctx.registers.get(reg)
            if probe is not None and probe.tag:
                yield from ctx.load_data(probe, 16)
                report.uaf_reads += 1

            # Churn same-size allocations to force reuse of freed space.
            churned = []
            for _ in range(self.churn_objects):
                cap = yield from ctx.malloc(size)
                churned.append(cap)

            # Probe every pending victim from every hoarding place while
            # the churn allocations (possibly occupying victims' former
            # memory) are still live.
            for v in pending:
                reused = ctx.sim.alloc.is_live(v.base)  # oracle, not attack
                heap_probe = yield from ctx.load_cap(v.heap_slot)
                probes = [
                    ("heap", heap_probe),
                    ("register", ctx.registers.get(v.register_index)),
                    ("kernel-hoard", ctx.retrieve_from_kernel("attack", v.hoard_ticket)),
                ]
                for source, cap in probes:
                    if cap is None or not cap.tag or cap.base != v.base:
                        report.revoked_probes += 1
                        continue
                    yield from ctx.load_data(cap.with_address(cap.base), 16)
                    if reused:
                        report.uar_hits += 1
                        report.stale_sources.append(source)
                    else:
                        report.uaf_reads += 1

            for cap in churned:
                yield from ctx.free(cap)
            yield 1000
