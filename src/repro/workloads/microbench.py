"""Targeted microbenchmarks: isolate single mechanisms.

Where the SPEC surrogates and server workloads exercise whole systems,
these minimal programs each stress exactly one code path, for unit-level
performance work and for teaching:

- :class:`PingPongAllocator` — malloc/free of one size in a tight loop:
  the quarantine and trigger machinery with no other traffic at all;
- :class:`PointerGraphTraversal` — build a linked structure once, then
  only *load* capabilities: the pure load-barrier path (every epoch makes
  the whole graph fault-visible to Reloaded, and costs the others
  nothing);
- :class:`FragmentationStress` — interleave sizes so freed memory can
  rarely be reused in place: address-space growth under quarantine (the
  fig. 3 mechanism in isolation).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Generator

from repro.alloc.quarantine import QuarantinePolicy
from repro.machine.capability import Capability
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulation import AppContext


class PingPongAllocator(Workload):
    """malloc/free of one object, repeated: pure allocator/shim cost."""

    name = "micro-pingpong"

    def __init__(self, iterations: int = 2000, size: int = 256,
                 min_quarantine: int = 8 << 10) -> None:
        self.iterations = iterations
        self.size = size
        self.quarantine_policy = QuarantinePolicy(min_bytes=min_quarantine)

    def run(self, ctx: "AppContext") -> Generator:
        for _ in range(self.iterations):
            cap = yield from ctx.malloc(self.size)
            yield from ctx.free(cap)


class PointerGraphTraversal(Workload):
    """A static capability graph, traversed by loads only.

    Under Reloaded every revocation epoch invalidates the TLB view of the
    whole graph: the traversal takes one fault per page per epoch. Under
    CHERIvoke/Cornucopia, traversal is free but a side churner (needed to
    trigger epochs at all) eats pauses. The ``faults_observed`` field
    reports what the barrier cost."""

    name = "micro-graph"

    def __init__(self, nodes: int = 512, rounds: int = 200, seed: int = 3,
                 churn_per_round: int = 2) -> None:
        self.nodes = nodes
        self.rounds = rounds
        self.seed = seed
        self.churn_per_round = churn_per_round
        self.quarantine_policy = QuarantinePolicy(min_bytes=8 << 10)
        self.loads = 0

    def run(self, ctx: "AppContext") -> Generator:
        rng = random.Random(self.seed)
        node_size = 64
        nodes: list[Capability] = []
        for _ in range(self.nodes):
            cap = yield from ctx.malloc(node_size)
            nodes.append(cap)
        # Wire a random successor into each node's first slot.
        cycles = 0
        for cap in nodes:
            succ = nodes[int(rng.random() * len(nodes))]
            cycles += ctx.core.store_cap(cap.with_address(cap.base), succ).cycles
        yield cycles

        slots = [cap.with_address(cap.base) for cap in nodes]
        for _ in range(self.rounds):
            # Chase a chain of pointers through the graph.
            cursor = slots[int(rng.random() * len(slots))]
            cycles = 0
            for _ in range(32):
                loaded, c = ctx.load_cap_inline(cursor)
                cycles += c
                self.loads += 1
                if loaded is None or not loaded.tag:
                    break
                cursor = loaded.with_address(loaded.base)
            yield cycles + 2_000
            # Side churn so revocation epochs actually happen.
            for _ in range(self.churn_per_round):
                cap = yield from ctx.malloc(256)
                yield from ctx.free(cap)


class FragmentationStress(Workload):
    """Interleaved sizes defeat in-place reuse; quarantine amplifies the
    footprint growth that results."""

    name = "micro-frag"

    def __init__(self, iterations: int = 800, seed: int = 9) -> None:
        self.iterations = iterations
        self.seed = seed
        self.quarantine_policy = QuarantinePolicy(min_bytes=16 << 10)

    def run(self, ctx: "AppContext") -> Generator:
        survivors: list[Capability] = []
        for i in range(self.iterations):
            # Allocate a pair of different classes; free one immediately,
            # keep the other pinned so its slab can never empty.
            a = yield from ctx.malloc(96)
            b = yield from ctx.malloc(1024 if i % 2 else 48)
            yield from ctx.free(a)
            if len(survivors) < 256:
                survivors.append(b)
            else:
                yield from ctx.free(b)
            yield 500
