"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``      one workload under one strategy, print the run summary;
- ``compare``  one workload under every strategy, print the overhead table;
- ``attack``   the adversarial UAF scenario per strategy (the security demo);
- ``pgbench``  the interactive-latency percentiles per strategy;
- ``campaign`` a declarative experiment campaign (parallel + cached);
- ``trace``    allocation traces (synth/stats/replay) **and** structured
  observability traces: ``record`` a run's event trace, ``summarize`` its
  per-epoch breakdown, ``diff`` two traces (e.g. cornucopia vs reloaded
  STW time), ``validate`` against the event schema, and ``export-chrome``
  for chrome://tracing (docs/OBSERVABILITY.md);
- ``check``    schedule exploration under seeded policies with the
  temporal-safety oracles attached: ``check --seed-range 0:500
  --scenario churn-small`` sweeps schedules, writing a minimized
  replayable artifact per failing seed; ``check replay <artifact>``
  re-runs one recorded interleaving (docs/CHECKING.md);
- ``serve``    the long-running simulation service: warm workers behind a
  Unix/TCP socket, request dedup against the result cache, admission
  control, live health/stats (docs/SERVING.md);
- ``serve-bench`` the serve load generator (closed/open loop, spawn
  baseline, overload burst), writing a JSON report;
- ``bench``    continuous benchmarking: ``run`` a registered suite with
  warmup/repetition control, ``compare`` against the content-addressed
  baseline store (deterministic-cycle regressions exit non-zero;
  wall-clock noise only warns), ``baseline record/show``, ``list`` the
  catalog, ``convert`` legacy reports (docs/BENCHMARKING.md);
- ``list``     the available workloads and strategies (``--json`` for
  machines).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import format_table, percentile
from repro.core.config import RevokerKind
from repro.core.experiment import (
    ALL_KINDS,
    bus_overhead,
    cpu_overhead,
    rss_ratio,
    run_experiment,
    wall_overhead,
)
from repro.errors import ReproError
from repro.machine.costs import cycles_to_micros
from repro.workloads import spec
from repro.workloads.adversarial import UafAttacker
from repro.workloads.base import Workload
from repro.workloads.grpc_qps import GrpcQpsWorkload
from repro.workloads.pgbench import PgBenchWorkload


def _kind(name: str) -> RevokerKind:
    """argparse type for strategy arguments: converts to RevokerKind,
    routing bad names through ``parser.error`` (consistent exit code 2
    and usage text) via ArgumentTypeError."""
    try:
        return RevokerKind(name)
    except ValueError:
        valid = ", ".join(k.value for k in RevokerKind)
        raise argparse.ArgumentTypeError(
            f"unknown strategy {name!r}; choose from: {valid}"
        ) from None


def _check_workload_name(name: str) -> str:
    """Validate a workload name, with the catalog in the message.

    Runs post-parse (inside :func:`_workload`) rather than as an
    argparse type so that programmatic ``main([...])`` callers get a
    return code instead of ``SystemExit``; the exit code (2) matches
    argparse's either way.
    """
    from repro.errors import ConfigError

    if name in ("pgbench", "grpc"):
        return name
    bench, _, inp = name.partition(".")
    try:
        inputs = spec.inputs_of(bench)
    except ConfigError:
        raise ConfigError(
            f"unknown workload {name!r} (run 'repro list' for the catalog)"
        ) from None
    if inp and inp not in inputs:
        raise ConfigError(
            f"unknown input {inp!r} for {bench}; choose from: {', '.join(inputs)}"
        ) from None
    return name


def _workload(name: str, scale: int, transactions: int, seconds: float) -> Workload:
    _check_workload_name(name)
    if name == "pgbench":
        return PgBenchWorkload(transactions=transactions)
    if name == "grpc":
        return GrpcQpsWorkload(duration_seconds=seconds)
    if "." in name:
        bench, inp = name.split(".", 1)
        return spec.workload(bench, inp, scale=scale)
    return spec.workload(name, scale=scale)


def _workload_names() -> list[str]:
    names = ["pgbench", "grpc"]
    for bench in spec.BENCHMARKS:
        for inp in spec.inputs_of(bench):
            names.append(f"{bench}.{inp}")
    return names


def cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        import json

        from repro.runner.campaign import registered_workloads

        print(json.dumps(
            {
                "workloads": _workload_names(),
                "workload_kinds": list(registered_workloads()),
                "strategies": [
                    {"name": kind.value, "provides_safety": kind.provides_safety}
                    for kind in RevokerKind
                ],
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print("workloads:")
    for name in _workload_names():
        print(f"  {name}")
    print("strategies:")
    for kind in RevokerKind:
        safety = "temporal safety" if kind.provides_safety else "no safety"
        print(f"  {kind.value:11s} ({safety})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = _workload(args.workload, args.scale, args.transactions, args.seconds)
    result = run_experiment(workload, args.revoker)
    print(result.summary())
    if result.stw_pauses:
        print(f"pauses: n={len(result.stw_pauses)} "
              f"max={cycles_to_micros(max(result.stw_pauses)):.1f}us")
    if result.foreground_faults:
        print(f"load-barrier faults: {result.foreground_faults} "
              f"(+{result.spurious_faults} spurious)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    results = {}
    for kind in ALL_KINDS:
        workload = _workload(args.workload, args.scale, args.transactions, args.seconds)
        results[kind] = run_experiment(workload, kind)
    base = results[RevokerKind.NONE]
    rows = []
    for kind in ALL_KINDS:
        r = results[kind]
        pause = cycles_to_micros(max(r.stw_pauses)) if r.stw_pauses else 0.0
        rows.append([
            kind.value,
            f"{wall_overhead(r, base) * 100:+.1f}%",
            f"{cpu_overhead(r, base) * 100:+.1f}%",
            f"{bus_overhead(r, base) * 100:+.0f}%",
            f"{rss_ratio(r, base):.2f}",
            r.revocations,
            f"{pause:.1f}us",
        ])
    print(format_table(
        ["strategy", "wall", "cpu", "bus", "rss", "revocations", "max pause"],
        rows,
        title=f"{args.workload}: overhead vs no-revocation baseline",
    ))
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    rows = []
    compromised = False
    for kind in ALL_KINDS:
        attacker = UafAttacker(rounds=args.rounds)
        run_experiment(attacker, kind)
        r = attacker.report
        verdict = "VULNERABLE" if r.uar_hits else "safe"
        compromised |= bool(r.uar_hits) and kind.provides_safety
        rows.append([kind.value, r.uar_hits, r.uaf_reads, r.revoked_probes, verdict])
    print(format_table(
        ["strategy", "UAR hits", "UAF reads", "revoked probes", "verdict"],
        rows,
        title="use-after-free attack outcomes",
    ))
    return 1 if compromised else 0


def cmd_pgbench(args: argparse.Namespace) -> int:
    rows = []
    for kind in ALL_KINDS:
        result = run_experiment(
            PgBenchWorkload(transactions=args.transactions, rate_tps=args.rate),
            kind,
        )
        ms = [s.millis for s in result.latencies]
        rows.append([
            kind.value,
            f"{percentile(ms, 50):.2f}",
            f"{percentile(ms, 90):.2f}",
            f"{percentile(ms, 99):.2f}",
            result.revocations,
        ])
    print(format_table(
        ["strategy", "p50 ms", "p90 ms", "p99 ms", "revocations"],
        rows,
        title=f"pgbench latency percentiles ({args.transactions} transactions)",
    ))
    return 0


def cmd_verify_paper(args: argparse.Namespace) -> int:
    """Quick spot-checks of encoded paper claims on small runs.

    Not the full harness (pytest benchmarks/ regenerates every figure);
    this is the five-minute confidence check.
    """
    from repro.analysis import paper
    from repro.analysis.paper import check_ordering, compare
    from repro.core.experiment import compare_strategies
    from repro.machine.costs import cycles_to_micros
    from repro.workloads import spec as spec_mod

    outcomes = []

    # 1. Pause-time ordering on a revoking SPEC surrogate.
    results = compare_strategies(
        lambda: spec_mod.workload("hmmer", "retro", scale=args.scale),
        (RevokerKind.CHERIVOKE, RevokerKind.CORNUCOPIA, RevokerKind.RELOADED),
    )
    pauses = {k.value: float(max(r.stw_pauses)) for k, r in results.items()}
    ok = check_ordering(pauses, ["cherivoke", "cornucopia", "reloaded"])
    outcomes.append(("pause ordering cherivoke>cornucopia>reloaded", ok))

    # 2. Reloaded single-threaded STW in the tens of microseconds.
    rel = results[RevokerKind.RELOADED]
    med = sorted(rel.stw_pauses)[len(rel.stw_pauses) // 2]
    c = compare(paper.FIG9_RELOADED_STW_US, cycles_to_micros(med))
    outcomes.append((
        f"{c.expectation.key}: {c.measured:.1f}us vs paper ~{c.expectation.value:.0f}us",
        c.ok,
    ))

    # 3. Reloaded bus traffic at most Cornucopia's.
    ok = (
        results[RevokerKind.RELOADED].total_bus_transactions
        <= results[RevokerKind.CORNUCOPIA].total_bus_transactions
    )
    outcomes.append(("reloaded bus <= cornucopia bus", ok))

    # 4. The security property, adversarially.
    attacker = UafAttacker(rounds=8, churn_objects=60)
    run_experiment(attacker, RevokerKind.RELOADED)
    outcomes.append(("no use-after-reallocation under reloaded",
                     attacker.report.uar_hits == 0))

    failures = 0
    for label, ok in outcomes:
        print(f"[{'OK ' if ok else 'OFF'}] {label}")
        failures += 0 if ok else 1
    print(
        f"\n{len(outcomes) - failures}/{len(outcomes)} paper claims verified "
        "(full regeneration: pytest benchmarks/ --benchmark-only)"
    )
    return 1 if failures else 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a declarative campaign spec through the parallel cached
    runner (docs/RUNNER.md documents the spec format)."""
    import json
    import os
    from pathlib import Path

    from repro.machine.costs import cycles_to_seconds
    from repro.runner import CampaignProgress, CampaignSpec, ResultCache, run_jobs

    try:
        data = json.loads(Path(args.spec).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read campaign spec: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"campaign spec is not valid JSON: {exc}") from exc
    campaign = CampaignSpec.from_dict(data)
    jobs = campaign.expand()
    if args.trace_dir:
        # Workers inherit this through the pool's fork, so every fresh job
        # records a per-job trace artifact (see runner.campaign.execute_job).
        os.environ["REPRO_TRACE_DIR"] = args.trace_dir
    if args.snapshot_dir:
        # Same inheritance: snapshot-capable jobs checkpoint at epoch
        # closes and resume after worker crashes/timeouts (docs/SNAPSHOT.md).
        os.environ["REPRO_SNAPSHOT_DIR"] = args.snapshot_dir
    if args.warm_start or args.prefix_dir:
        # Warm-start: jobs sharing a workload prefix fork from one stored
        # checkpoint instead of cold-simulating the warmup (docs/WARMSTART.md).
        from repro.snapshot.prefix import default_prefix_dir

        os.environ["REPRO_PREFIX_DIR"] = args.prefix_dir or str(
            default_prefix_dir()
        )

    if args.dry_run:
        for job in jobs:
            print(job.describe())
        print(f"{len(jobs)} jobs")
        return 0

    max_workers = args.jobs
    if max_workers == 0:
        max_workers = os.cpu_count() or 1
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    echo = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True)
    )
    progress = CampaignProgress(len(jobs), echo=echo)
    results = run_jobs(
        jobs,
        max_workers=max_workers,
        cache=cache,
        timeout_s=args.timeout,
        progress=progress,
    )

    rows = []
    for job, r in zip(jobs, results):
        pause = cycles_to_micros(max(r.stw_pauses)) if r.stw_pauses else 0.0
        rows.append([
            job.describe(),
            f"{r.wall_seconds:.3f}",
            f"{cycles_to_seconds(r.total_cpu_cycles):.3f}",
            r.total_bus_transactions,
            r.peak_rss_bytes >> 20,
            r.revocations,
            f"{pause:.1f}us",
        ])
    print(format_table(
        ["job", "wall s", "cpu s", "bus", "rss MiB", "revocations", "max pause"],
        rows,
        title=f"campaign {campaign.name!r}: {len(jobs)} jobs",
    ))
    print(progress.summary())

    if args.results_dir:
        # One canonical-JSON file per job, named by its trace slug —
        # byte-comparable across runs (the CI warm-start smoke job cmp's
        # a cold sweep against a --warm-start rerun).
        from repro.runner.campaign import job_trace_slug
        from repro.runner.serialize import dumps_result

        out = Path(args.results_dir)
        out.mkdir(parents=True, exist_ok=True)
        for job, r in zip(jobs, results):
            (out / f"{job_trace_slug(job)}.json").write_text(
                dumps_result(r) + "\n"
            )
    return 0


def _load_summary(path: str):
    """Read + validate an observability trace and summarize it."""
    from repro.obs import TraceSummary, read_jsonl, validate_events

    meta, events = read_jsonl(path)
    validate_events(events)
    return meta, events, TraceSummary.from_events(events)


def _print_summary(path: str, meta: dict, summary) -> None:
    print(f"{path}: {summary.events} events, "
          f"{meta.get('dropped', 0)} dropped, "
          f"{len(summary.epochs)} epochs")
    if not summary.epochs:
        return
    rows = []
    for e in summary.epochs:
        rows.append([
            e.epoch,
            e.stw_cycles,
            e.concurrent_cycles,
            e.fault_count,
            e.spurious_faults,
            e.sweep_bus_transactions,
        ])
    print(format_table(
        ["epoch", "stw cyc", "concurrent cyc", "faults", "spurious", "sweep bus"],
        rows,
        title="per-epoch breakdown",
    ))
    print(f"totals: stw={summary.total_stw_cycles} "
          f"faults={summary.total_faults} "
          f"tlb-shootdowns={summary.tlb_shootdowns} "
          f"cache-evicted-lines={summary.cache_evicted_lines} "
          f"quarantine filled={summary.quarantine_filled_bytes}B "
          f"drained={summary.quarantine_drained_bytes}B")


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.workloads.trace import AllocationTrace, TraceWorkload, synthesize_trace

    if args.trace_cmd == "record":
        from repro.obs import validate_events, write_chrome_trace, write_jsonl
        from repro.obs.tracer import DEFAULT_CAPACITY, TRACER

        workload = _workload(
            args.workload, args.scale, args.transactions, args.seconds
        )
        TRACER.start(capacity=args.capacity or DEFAULT_CAPACITY)
        try:
            result = run_experiment(workload, args.revoker)
            events = TRACER.events()
            dropped = TRACER.dropped
        finally:
            TRACER.stop()
        validate_events(events)
        meta = {
            "workload": workload.name,
            "revoker": args.revoker.value,
            "wall_cycles": result.wall_cycles,
            "dropped": dropped,
        }
        write_jsonl(args.out, events, meta)
        print(f"recorded {len(events)} events ({dropped} dropped) to {args.out}")
        if args.chrome:
            write_chrome_trace(args.chrome, events, meta)
            print(f"chrome trace: {args.chrome}")
        return 0
    if args.trace_cmd == "summarize":
        meta, _, summary = _load_summary(args.path)
        _print_summary(args.path, meta, summary)
        return 0
    if args.trace_cmd == "diff":
        from repro.obs import diff_summaries

        meta_a, _, summary_a = _load_summary(args.a)
        meta_b, _, summary_b = _load_summary(args.b)
        rows = diff_summaries(summary_a, summary_b)
        print(format_table(
            ["metric", meta_a.get("revoker", "a"), meta_b.get("revoker", "b"), "delta"],
            rows,
            title=f"{args.a} vs {args.b}",
        ))
        return 0
    if args.trace_cmd == "validate":
        from repro.obs import read_jsonl, validate_events

        meta, events = read_jsonl(args.path)
        count = validate_events(events)
        print(f"{args.path}: {count} events OK "
              f"(format v{meta.get('version', '?')}, "
              f"{meta.get('dropped', 0)} dropped)")
        return 0
    if args.trace_cmd == "export-chrome":
        from repro.obs import read_jsonl, write_chrome_trace

        meta, events = read_jsonl(args.path)
        write_chrome_trace(args.out, events, meta)
        print(f"wrote {len(events)} events to {args.out} "
              "(load in chrome://tracing or ui.perfetto.dev)")
        return 0
    if args.trace_cmd == "synth":
        trace = synthesize_trace(
            objects=args.objects, churn=args.churn, seed=args.seed
        )
        trace.save(args.path)
        print(f"wrote {len(trace)} events to {args.path}: {trace.stats()}")
        return 0
    if args.trace_cmd == "stats":
        trace = AllocationTrace.load(args.path)
        trace.validate()
        print(f"{args.path}: {len(trace)} events, well-formed: {trace.stats()}")
        return 0
    if args.trace_cmd == "replay":
        trace = AllocationTrace.load(args.path)
        workload = TraceWorkload(trace)
        result = run_experiment(workload, args.revoker)
        print(result.summary())
        print(f"replayed {workload.replayed_events} events, "
              f"{workload.stale_loads} capability loads hit empty or revoked slots")
        return 0
    raise SystemExit(f"unknown trace command {args.trace_cmd!r}")


def cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import (
        Explorer,
        build_artifact,
        replay_artifact,
        scenario as lookup_scenario,
    )

    if args.mode == "replay":
        if not args.artifact:
            raise ReproError("check replay requires an artifact path")
        result = replay_artifact(args.artifact)
        for violation in result.violations:
            print(f"  {violation}")
        if result.ok:
            print(f"{args.artifact}: no violation on replay "
                  f"({result.steps} steps) — the bug it witnessed is gone")
            return 0
        print(f"{args.artifact}: violation reproduced "
              f"({len(result.violations)} violations, {result.steps} steps)")
        return 1

    try:
        first, _, last = args.seed_range.partition(":")
        seeds = range(int(first), int(last))
    except ValueError:
        raise ReproError(
            f"--seed-range wants start:end, got {args.seed_range!r}"
        ) from None
    scn = lookup_scenario(args.scenario)
    explorer = Explorer(
        scn,
        revoker=args.revoker,
        policy_kind=args.policy,
        window=args.window,
        workload_seed=args.workload_seed,
    )
    progress = None
    if not args.quiet:
        def progress(result):  # noqa: ANN001 - SeedResult
            mark = "ok" if result.ok else f"{len(result.violations)} VIOLATIONS"
            print(f"  seed {result.seed}: {result.steps} steps, {mark}",
                  file=sys.stderr, flush=True)
    report = explorer.explore(
        seeds, differential=not args.no_differential, progress=progress
    )
    print(report.summary())
    if report.ok:
        return 0

    out_dir = Path(args.artifact_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for fail in report.failures:
        artifact = build_artifact(
            fail,
            scn.name,
            args.revoker,
            args.workload_seed,
            window=args.window,
            minimize=not args.no_minimize,
        )
        path = out_dir / f"violation-{scn.name}-seed{fail.seed}.json"
        artifact.save(path)
        print(f"artifact: {path} (trace {len(artifact.trace)} choices; "
              f"replay with: repro check replay {path})")
    if args.timeline and report.failures:
        from repro.obs import write_chrome_trace
        from repro.obs.tracer import TRACER, tracing

        with tracing():
            explorer.run_seed(report.failures[0].seed)
            events = TRACER.events()
        count = write_chrome_trace(
            args.timeline,
            events,
            {"scenario": scn.name, "seed": report.failures[0].seed},
        )
        print(f"timeline: {args.timeline} ({count} events, "
              "load in chrome://tracing)")
    return 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service daemon until drained (docs/SERVING.md)."""
    from repro.serve.server import ServeConfig, SimulationServer

    config = ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_bound=args.queue,
        job_timeout_s=args.job_timeout,
        drain_timeout_s=args.drain_timeout,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        snapshot_dir=args.snapshot_dir,
        prefix_dir=args.prefix_dir,
    )
    return SimulationServer(config).run()


def _cmd_snapshot_prefix(args: argparse.Namespace) -> int:
    """Warm-start prefix store tools: ``list`` (stored prefixes and
    their provenance) and ``warm`` (pre-capture every prefix a campaign
    spec will need). docs/WARMSTART.md."""
    import json
    import os
    from pathlib import Path

    from repro.snapshot import read_header
    from repro.snapshot.prefix import (
        PrefixStore,
        default_prefix_dir,
        prefix_divergence_epoch,
        prefix_key,
    )

    root = Path(args.prefix_dir) if args.prefix_dir else default_prefix_dir()
    store = PrefixStore(root)

    if args.prefix_cmd == "list":
        paths = store.paths()
        if not paths:
            print(f"no prefixes stored under {root}")
            return 0
        rows = []
        for path in paths:
            header = read_header(path.read_bytes())
            rows.append([
                path.stem[:12],
                header.get("workload", "?"),
                header.get("revoker", "?"),
                header.get("epoch", "?"),
                path.stat().st_size >> 10,
            ])
        print(format_table(
            ["prefix", "workload", "captured under", "epoch", "KiB"],
            rows,
            title=f"{len(paths)} prefixes in {root}",
        ))
        return 0

    # warm: run one representative job per missing prefix group so a
    # later campaign (or serve daemon) starts with every prefix hot.
    from repro.runner.campaign import CampaignSpec, execute_job, prefix_eligible

    try:
        data = json.loads(Path(args.spec).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read campaign spec: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"campaign spec is not valid JSON: {exc}") from exc
    campaign = CampaignSpec.from_dict(data)
    os.environ["REPRO_PREFIX_DIR"] = str(root)
    epoch = prefix_divergence_epoch()
    groups: dict = {}
    for job in campaign.expand():
        if prefix_eligible(job):
            groups.setdefault(prefix_key(job, epoch), job)
    present = sum(1 for key in groups if key in store)
    captured = missed = 0
    for key in sorted(groups):
        if key in store:
            continue
        execute_job(groups[key])
        if key in store:
            captured += 1
        else:
            # The capture window closed before the threshold poll (tiny
            # run, early trigger): the campaign will run this group cold.
            missed += 1
    print(
        f"{len(groups)} prefix groups: {present} already stored, "
        f"{captured} captured, {missed} without a capture window "
        f"(store: {root})"
    )
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Checkpoint tools: ``save`` (run with checkpointing, keep one),
    ``resume`` (continue a checkpoint to completion), ``inspect``
    (print a checkpoint's provenance header), ``prefix`` (warm-start
    prefix store; docs/WARMSTART.md). docs/SNAPSHOT.md."""
    import json
    from pathlib import Path

    from repro.runner.serialize import dumps_result
    from repro.snapshot import read_header, restore_simulation

    def write_result(result, path: str | None) -> None:
        if path:
            Path(path).write_text(dumps_result(result) + "\n")

    if args.snapshot_cmd == "prefix":
        return _cmd_snapshot_prefix(args)

    if args.snapshot_cmd == "inspect":
        try:
            data = Path(args.path).read_bytes()
        except OSError as exc:
            raise ReproError(f"cannot read checkpoint: {exc}") from exc
        print(json.dumps(read_header(data), indent=2, sort_keys=True))
        return 0

    if args.snapshot_cmd == "resume":
        try:
            data = Path(args.path).read_bytes()
        except OSError as exc:
            raise ReproError(f"cannot read checkpoint: {exc}") from exc
        sim, header = restore_simulation(data)
        result = sim.resume()
        write_result(result, args.result)
        print(
            f"resumed {header['workload']}/{header['revoker']} from epoch "
            f"{header['epoch']} (capture #{header['sequence']}): "
            f"wall {result.wall_cycles} cycles, "
            f"{result.revocations} revocations"
        )
        return 0

    # save
    from repro.core.config import SimulationConfig
    from repro.core.simulation import Simulation
    from repro.errors import ConfigError
    from repro.snapshot import SnapshotPlan, SnapshotSession

    _check_workload_name(args.workload)
    if args.workload in ("pgbench", "grpc"):
        raise ConfigError(
            f"{args.workload} does not support snapshots (external-protocol "
            "workload); use a spec churn workload"
        )
    if "." in args.workload:
        bench, inp = args.workload.split(".", 1)
        workload = spec.workload(bench, inp, scale=args.scale, seed=args.seed)
    else:
        workload = spec.workload(args.workload, scale=args.scale, seed=args.seed)

    cfg = SimulationConfig(revoker=args.revoker)
    if args.memory_mib is not None:
        cfg.machine.memory_bytes = args.memory_mib << 20
    every_checks = args.every_checks
    if args.revoker is RevokerKind.NONE and every_checks is None:
        every_checks = 64
    sim = Simulation(workload, cfg)
    session = SnapshotSession(
        sim,
        SnapshotPlan(every_epochs=args.every_epochs, every_checks=every_checks),
    )
    result = sim.run(snapshots=session)
    write_result(result, args.result)
    if not session.captured:
        print(
            f"no checkpoints captured (run completed before the cadence "
            f"fired; {result.revocations} revocations) — nothing written",
            file=sys.stderr,
        )
        return 1
    try:
        blob = session.captured[args.capture_index]
        header = session.headers[args.capture_index]
    except IndexError:
        raise ReproError(
            f"--capture-index {args.capture_index} out of range "
            f"({len(session.captured)} captures)"
        ) from None
    Path(args.out).write_bytes(blob)
    print(
        f"{len(session.captured)} captures; wrote #{header['sequence']} "
        f"(epoch {header['epoch']}, {len(blob)} bytes) to {args.out}"
    )
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:  # pragma: no cover
    # Reached only for a bare ``repro serve-bench`` (main() forwards
    # anything with arguments straight to the bench parser, because
    # argparse.REMAINDER refuses to capture leading ``--options``).
    from repro.serve.bench import main as bench_main

    return bench_main(args.bench_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cornucopia Reloaded reproduction: CHERI temporal-safety "
        "revocation on a simulated machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--scale", type=int, default=256,
                       help="byte-quantity divisor for SPEC surrogates")
        p.add_argument("--transactions", type=int, default=500,
                       help="pgbench transaction count")
        p.add_argument("--seconds", type=float, default=0.5,
                       help="gRPC run duration")

    p = sub.add_parser("list", help="available workloads and strategies")
    p.add_argument("--json", action="store_true",
                   help="emit the catalog as JSON for machine consumption")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="run one workload under one strategy")
    p.add_argument("workload")
    p.add_argument("revoker", nargs="?", default="reloaded", type=_kind)
    common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compare", help="run one workload under every strategy")
    p.add_argument("workload")
    common(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("attack", help="adversarial UAF scenario per strategy")
    p.add_argument("--rounds", type=int, default=15)
    p.set_defaults(fn=cmd_attack)

    p = sub.add_parser("pgbench", help="interactive latency percentiles")
    p.add_argument("--transactions", type=int, default=400)
    p.add_argument("--rate", type=float, default=None)
    p.set_defaults(fn=cmd_pgbench)

    p = sub.add_parser("verify-paper", help="quick paper-claim spot checks")
    p.add_argument("--scale", type=int, default=512)
    p.set_defaults(fn=cmd_verify_paper)

    p = sub.add_parser(
        "campaign",
        help="run a declarative experiment campaign (parallel, cached)",
    )
    p.add_argument("spec", help="campaign spec JSON file (see docs/RUNNER.md)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: $REPRO_JOBS or 1; 0 = all CPUs)")
    p.add_argument("--cache-dir", default=None,
                   help="result cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro/results)")
    p.add_argument("--no-cache", action="store_true",
                   help="re-simulate everything, do not read or write the cache")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout in seconds (pool mode)")
    p.add_argument("--dry-run", action="store_true",
                   help="print the expanded job matrix and exit")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress lines")
    p.add_argument("--trace-dir", default=None,
                   help="record a per-job observability trace JSONL into this "
                        "directory (cache hits skip execution: combine with "
                        "--no-cache for full coverage)")
    p.add_argument("--snapshot-dir", default=None,
                   help="checkpoint snapshot-capable jobs into this directory "
                        "at every epoch close; killed/timed-out jobs resume "
                        "from their last checkpoint on retry (docs/SNAPSHOT.md)")
    p.add_argument("--warm-start", action="store_true",
                   help="share simulation prefixes across the sweep: capture "
                        "each group's warmup once and fork every sibling job "
                        "from it (docs/WARMSTART.md)")
    p.add_argument("--prefix-dir", default=None,
                   help="warm-start prefix store root (implies --warm-start; "
                        "default: $REPRO_PREFIX_DIR or ~/.cache/repro/prefixes)")
    p.add_argument("--results-dir", default=None,
                   help="write each job's RunResult as canonical JSON into "
                        "this directory (byte-comparable across runs)")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("trace", help="allocation + observability trace tools")
    tsub = p.add_subparsers(dest="trace_cmd", required=True)
    pc = tsub.add_parser("record", help="run a workload and record its event trace")
    pc.add_argument("workload")
    pc.add_argument("revoker", nargs="?", default="reloaded", type=_kind)
    pc.add_argument("--out", default="trace.jsonl",
                    help="output JSONL path (default: trace.jsonl)")
    pc.add_argument("--chrome", default=None,
                    help="also export a chrome://tracing JSON to this path")
    pc.add_argument("--capacity", type=int, default=None,
                    help="ring-buffer capacity in events (default: 262144)")
    common(pc)
    pz = tsub.add_parser("summarize", help="per-epoch breakdown of a recorded trace")
    pz.add_argument("path")
    pd = tsub.add_parser("diff", help="compare two recorded traces metric by metric")
    pd.add_argument("a")
    pd.add_argument("b")
    pv = tsub.add_parser("validate", help="check a trace against the event schema")
    pv.add_argument("path")
    pe = tsub.add_parser("export-chrome", help="convert a JSONL trace for chrome://tracing")
    pe.add_argument("path")
    pe.add_argument("out")
    ps = tsub.add_parser("synth", help="synthesize a random trace")
    ps.add_argument("path")
    ps.add_argument("--objects", type=int, default=200)
    ps.add_argument("--churn", type=int, default=1000)
    ps.add_argument("--seed", type=int, default=1)
    pt = tsub.add_parser("stats", help="validate and summarize a trace")
    pt.add_argument("path")
    pr = tsub.add_parser("replay", help="replay a trace under a strategy")
    pr.add_argument("path")
    pr.add_argument("revoker", nargs="?", default="reloaded", type=_kind)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "check",
        help="explore schedules with temporal-safety oracles attached",
    )
    p.add_argument("mode", nargs="?", default="explore",
                   choices=["explore", "replay"],
                   help="explore a seed range (default) or replay an artifact")
    p.add_argument("artifact", nargs="?", default=None,
                   help="violation artifact JSON (replay mode)")
    p.add_argument("--scenario", default="churn-small",
                   help="checking scenario (see docs/CHECKING.md)")
    p.add_argument("--revoker", type=_kind, default=RevokerKind.RELOADED)
    p.add_argument("--seed-range", default="0:100",
                   help="schedule seeds start:end (default 0:100)")
    p.add_argument("--policy", default="random",
                   choices=["random", "pct", "round-robin"],
                   help="schedule policy seeded per exploration seed")
    p.add_argument("--window", type=int, default=0,
                   help="cycles of clock drift tolerated among candidate "
                        "cores (0 = exact ties only)")
    p.add_argument("--workload-seed", type=int, default=0,
                   help="workload RNG seed (fixed across schedule seeds)")
    p.add_argument("--no-differential", action="store_true",
                   help="skip the cross-revoker differential check")
    p.add_argument("--no-minimize", action="store_true",
                   help="save failing journals unminimized")
    p.add_argument("--artifact-dir", default="check-artifacts",
                   help="directory for violation artifacts (written only "
                        "on failure)")
    p.add_argument("--timeline", default=None,
                   help="on failure, re-run the first failing seed under "
                        "the tracer and export a chrome://tracing JSON here")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-seed progress lines")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "serve",
        help="run the long-lived simulation service (docs/SERVING.md)",
    )
    p.add_argument("--socket", default=None,
                   help="listen on this unix socket path")
    p.add_argument("--host", default=None,
                   help="listen on this TCP host (with --port)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral; printed at startup)")
    p.add_argument("--workers", type=int, default=None,
                   help="warm worker processes (default: $REPRO_SERVE_WORKERS or 2)")
    p.add_argument("--queue", type=int, default=None,
                   help="admission bound before 'overloaded' rejections "
                        "(default: $REPRO_SERVE_QUEUE or 64)")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="seconds one job may hold a worker "
                        "(default: $REPRO_SERVE_JOB_TIMEOUT or unlimited)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds to finish in-flight work on shutdown")
    p.add_argument("--cache-dir", default=None,
                   help="result cache root (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro/results)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without reading or writing the result cache")
    p.add_argument("--snapshot-dir", default=None,
                   help="checkpoint snapshot-capable jobs into this directory "
                        "(retried requests resume from the last checkpoint; "
                        "default: $REPRO_SNAPSHOT_DIR)")
    p.add_argument("--prefix-dir", default=None,
                   help="warm-start prefix store: workers fork sweep siblings "
                        "from one shared warmup checkpoint (docs/WARMSTART.md; "
                        "default: $REPRO_PREFIX_DIR)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "snapshot",
        help="save/resume/inspect simulation checkpoints (docs/SNAPSHOT.md)",
    )
    ssub = p.add_subparsers(dest="snapshot_cmd", required=True)
    pss = ssub.add_parser(
        "save",
        help="run a workload with checkpointing on and save one checkpoint",
    )
    pss.add_argument("workload", help="a spec churn workload, e.g. hmmer.retro")
    pss.add_argument("revoker", nargs="?", default="reloaded", type=_kind)
    pss.add_argument("--scale", type=int, default=512,
                     help="workload scale divisor (default: 512)")
    pss.add_argument("--seed", type=int, default=1)
    pss.add_argument("--memory-mib", type=int, default=None,
                     help="shrink simulated physical memory to this many MiB "
                          "(smaller checkpoints)")
    pss.add_argument("--every-epochs", type=int, default=1,
                     help="capture cadence in completed epochs (default: 1)")
    pss.add_argument("--every-checks", type=int, default=None,
                     help="capture cadence in work-unit polls; required for "
                          "the none revoker (default there: 64)")
    pss.add_argument("--capture-index", type=int, default=0,
                     help="which capture to write (default: first; -1: last)")
    pss.add_argument("--out", default="checkpoint.ckpt",
                     help="checkpoint output path (default: checkpoint.ckpt)")
    pss.add_argument("--result", default=None,
                     help="also write the straight-through RunResult JSON here")
    psr = ssub.add_parser("resume", help="continue a checkpoint to completion")
    psr.add_argument("path")
    psr.add_argument("--result", default=None,
                     help="write the resumed RunResult JSON here (bit-identical "
                          "to the straight-through run's)")
    psi = ssub.add_parser("inspect", help="print a checkpoint's header")
    psi.add_argument("path")
    psp = ssub.add_parser(
        "prefix",
        help="warm-start prefix store tools (docs/WARMSTART.md)",
    )
    ppsub = psp.add_subparsers(dest="prefix_cmd", required=True)
    ppl = ppsub.add_parser("list", help="stored prefixes and their provenance")
    ppl.add_argument("--prefix-dir", default=None,
                     help="prefix store root (default: $REPRO_PREFIX_DIR or "
                          "~/.cache/repro/prefixes)")
    ppw = ppsub.add_parser(
        "warm",
        help="pre-capture every prefix a campaign spec will need",
    )
    ppw.add_argument("spec", help="campaign spec JSON file (see docs/RUNNER.md)")
    ppw.add_argument("--prefix-dir", default=None,
                     help="prefix store root (default: $REPRO_PREFIX_DIR or "
                          "~/.cache/repro/prefixes)")
    p.set_defaults(fn=cmd_snapshot)

    from repro.perf.cli import add_bench_parser

    add_bench_parser(sub)

    p = sub.add_parser(
        "serve-bench",
        help="load-generate against a serve daemon (see serve-bench --help)",
    )
    p.add_argument("bench_args", nargs=argparse.REMAINDER,
                   help="arguments for the load generator "
                        "(try: serve-bench --help)")
    p.set_defaults(fn=cmd_serve_bench)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    try:
        if argv[:1] == ["serve-bench"]:
            # Forwarded verbatim: the bench owns its own argparse, and
            # REMAINDER cannot capture leading --options (bpo-17050).
            from repro.serve.bench import main as bench_main

            return bench_main(argv[1:])
        parser = build_parser()
        args = parser.parse_args(argv)
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
