"""The paper's reported numbers, as data, plus a comparison API.

Everything the evaluation section states numerically is collected here so
that benchmarks, tests, and EXPERIMENTS.md can compare measured results
against the paper *programmatically* — each expectation records where in
the paper it comes from and what kind of claim it is (an exact statistic,
a bound, or an ordering).

Absolute cycle-level numbers are not expected to transfer from Morello to
a scaled simulation; expectations are therefore expressed the way the
paper argues them: ratios, orderings, and orders of magnitude.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Direction(enum.Enum):
    """How a measured value should relate to the expectation."""

    AT_MOST = "<="
    AT_LEAST = ">="
    APPROX = "~"


@dataclass(frozen=True)
class Expectation:
    """One numeric claim from the paper."""

    key: str
    #: Where the paper states it (section / figure / table).
    source: str
    value: float
    direction: Direction
    #: Multiplicative tolerance for APPROX (0.5 = within 2x either way).
    tolerance: float = 0.5
    note: str = ""

    def check(self, measured: float) -> bool:
        if self.direction is Direction.AT_MOST:
            return measured <= self.value
        if self.direction is Direction.AT_LEAST:
            return measured >= self.value
        lo = self.value * self.tolerance
        hi = self.value / self.tolerance if self.tolerance else float("inf")
        return lo <= measured <= hi


# --- §5.1 SPEC CPU2006 -------------------------------------------------------

#: Fig. 1 worst cases, as stated in the text.
FIG1_WALL_OVERHEADS = {
    ("xalancbmk", "reloaded"): Expectation(
        "fig1.xalancbmk.reloaded", "§5.1 / fig. 1", 0.294, Direction.APPROX,
        0.25, "worst case: 29.4% (down from 29.7% for Cornucopia)",
    ),
    ("xalancbmk", "cornucopia"): Expectation(
        "fig1.xalancbmk.cornucopia", "§5.1 / fig. 1", 0.297, Direction.APPROX, 0.25,
    ),
    ("omnetpp", "reloaded"): Expectation(
        "fig1.omnetpp.reloaded", "§5.1 / fig. 1", 0.231, Direction.APPROX, 0.25,
    ),
    ("omnetpp", "cornucopia"): Expectation(
        "fig1.omnetpp.cornucopia", "§5.1 / fig. 1", 0.248, Direction.APPROX, 0.25,
    ),
}

#: bzip2 and sjeng "do not engage revocation" (fig. 1 caption).
NON_REVOKING_BENCHMARKS = ("bzip2", "sjeng")

#: Fig. 4: Reloaded's median bus-traffic overhead relative to Cornucopia.
FIG4_RELOADED_OVER_CORNUCOPIA_MEDIAN = Expectation(
    "fig4.median_ratio", "§5.1 / fig. 4", 0.87, Direction.APPROX, 0.8,
    "median bus traffic cost of Reloaded relative to Cornucopia",
)

#: Fig. 4 per-benchmark worst cases (overhead vs baseline).
FIG4_WORST_CASES = {
    ("omnetpp", "reloaded"): 0.45,
    ("omnetpp", "cornucopia"): 0.50,
    ("xalancbmk", "reloaded"): 0.60,
    ("xalancbmk", "cornucopia"): 0.68,
}

#: Fig. 3: the quarantine policy's RSS-ratio target.
FIG3_RSS_TARGET = 1.33

# --- §5.2 pgbench ------------------------------------------------------------------

#: Fig. 7: 99th-minus-median latency spreads, milliseconds.
FIG7_TAIL_SPREAD_MS = {
    "cherivoke": Expectation("fig7.spread.cherivoke", "§5.2 / fig. 7", 27.0,
                             Direction.APPROX, 0.3),
    "cornucopia": Expectation("fig7.spread.cornucopia", "§5.2 / fig. 7", 10.0,
                              Direction.APPROX, 0.3),
    "reloaded": Expectation("fig7.spread.reloaded", "§5.2 / fig. 7", 5.4,
                            Direction.APPROX, 0.2),
}

#: Fig. 7: median world-stopped durations, milliseconds.
FIG7_MEDIAN_STW_MS = {
    "cherivoke": Expectation("fig7.stw.cherivoke", "§5.2 / fig. 7", 20.0,
                             Direction.APPROX, 0.3),
    "cornucopia": Expectation("fig7.stw.cornucopia", "§5.2 / fig. 7", 6.2,
                              Direction.APPROX, 0.3),
}

#: Fig. 7: Reloaded's median cumulative trap handling per epoch, ms.
FIG7_RELOADED_TRAP_SUM_MS = Expectation(
    "fig7.trapsum.reloaded", "§5.2 / fig. 7", 0.86, Direction.APPROX, 0.02,
    "median per-epoch sum of foreground fault handling",
)

#: Fig. 6: Reloaded incurs "less than half the bus traffic overhead of
#: Cornucopia" on pgbench.
FIG6_RELOADED_OVER_CORNUCOPIA = Expectation(
    "fig6.ratio", "§5.2 / fig. 6", 0.5, Direction.AT_MOST,
    note="our surrogate's conservative store rate lands ~0.7; direction holds",
)

# --- §5.3 gRPC QPS -------------------------------------------------------------------

#: Throughput reductions (both ~13%, not significantly different).
FIG8_THROUGHPUT_LOSS = Expectation(
    "fig8.qps_loss", "§5.3", 0.13, Direction.APPROX, 0.3,
)

#: p99 latency multiples vs baseline.
FIG8_P99 = {
    "reloaded": Expectation("fig8.p99.reloaded", "§5.3 / fig. 8", 2.0,
                            Direction.APPROX, 0.4),
    "cornucopia": Expectation("fig8.p99.cornucopia", "§5.3 / fig. 8", 3.5,
                              Direction.APPROX, 0.4),
}

#: Mean stop-the-world estimates, milliseconds (§5.3 text).
GRPC_STW_MS = {
    "cornucopia": Expectation("grpc.stw.cornucopia", "§5.3", 8.7,
                              Direction.APPROX, 0.1),
    "reloaded": Expectation("grpc.stw.reloaded", "§5.3", 0.3,
                            Direction.APPROX, 0.2),
}

# --- §5.4 phase timing ------------------------------------------------------------------

#: Reloaded single-threaded STW: "tens of microseconds".
FIG9_RELOADED_STW_US = Expectation(
    "fig9.reloaded_stw", "§5.4", 50.0, Direction.APPROX, 0.2,
)

#: gRPC (multi-threaded) Reloaded STW median: 323 us.
FIG9_RELOADED_STW_GRPC_US = Expectation(
    "fig9.reloaded_stw_grpc", "§5.4", 323.0, Direction.APPROX, 0.3,
)

# --- §5.5 / table 2 ------------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    """One row of table 2 (paper scale)."""

    benchmark: str
    mean_alloc_mib: float
    sum_freed_gib: float
    freed_to_alloc: float
    revocations: float
    rev_per_sec: float


TABLE2 = {
    "xalancbmk": Table2Row("xalancbmk", 625, 66.9, 110, 426, 0.572),
    "astar lakes": Table2Row("astar lakes", 235, 3.36, 14.7, 39, 0.150),
    "omnetpp": Table2Row("omnetpp", 365, 73.8, 207, 827, 0.880),
    "hmmer nph3": Table2Row("hmmer nph3", 49.3, 2.06, 42.8, 168, 1.45),
    "hmmer retro": Table2Row("hmmer retro", 20.4, 0.579, 29.0, 117, 0.481),
    "gobmk trevord": Table2Row("gobmk trevord", 124, 0.212, 1.75, 7, 0.0623),
    "pgbench": Table2Row("pgbench", 23.0, 55.1, 2534, 10072, 14.8),
    "gRPC QPS": Table2Row("gRPC QPS", 340, 4.65, 14.0, 54, 1.54),
}

# --- Table 1 -------------------------------------------------------------------------------

#: pgbench --rate latency percentiles (ms): rate -> (p50, p90, p95, p99, p99.9)
TABLE1 = {
    100: (3.15, 5.14, 6.28, 12.8, 32.4),
    150: (3.12, 5.12, 6.35, 12.5, 43.9),
    250: (3.06, 4.13, 5.49, 8.72, 68.6),
    None: (3.15, 4.22, 5.59, 8.55, 69.6),  # unscheduled
}


def check_ordering(values: dict[str, float], order: list[str]) -> bool:
    """True when values follow the strictly decreasing order given
    (e.g. pause times: cherivoke > cornucopia > reloaded)."""
    seq = [values[name] for name in order]
    return all(a > b for a, b in zip(seq, seq[1:]))


@dataclass
class ComparisonResult:
    """Outcome of comparing one measured value to one expectation."""

    expectation: Expectation
    measured: float
    ok: bool

    def describe(self) -> str:
        status = "OK " if self.ok else "OFF"
        return (
            f"[{status}] {self.expectation.key}: measured {self.measured:.3g} "
            f"vs paper {self.expectation.direction.value} "
            f"{self.expectation.value:.3g} ({self.expectation.source})"
        )


def compare(expectation: Expectation, measured: float) -> ComparisonResult:
    return ComparisonResult(expectation, measured, expectation.check(measured))
