"""Plain-text table and figure rendering for the benchmark harness.

The paper's tables and figures are regenerated as aligned text: rows and
series first, pictures never. Every benchmark prints through these
helpers so EXPERIMENTS.md can quote the harness output directly.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table; floats get 3 significant decimals."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(fraction: float) -> str:
    """0.294 -> '+29.4%'."""
    return f"{fraction * 100:+.1f}%"


def format_series(
    name: str,
    pairs: Sequence[tuple[str, float]],
    unit: str = "",
) -> str:
    """One labelled series (a figure's bar group) as a text line."""
    body = "  ".join(f"{label}={value:.3f}{unit}" for label, value in pairs)
    return f"{name}: {body}"


def bar_chart(
    rows: Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """A horizontal ASCII bar chart (quick visual for examples)."""
    if not rows:
        return "(empty)"
    peak = max(abs(v) for _, v in rows) or 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(1, int(round(abs(value) / peak * width))) if value else ""
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)
