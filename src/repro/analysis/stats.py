"""Statistics helpers used by the evaluation harness.

Percentiles, CDFs, and geometric means — the arithmetic behind figures
1-9 and tables 1-2. Kept dependency-light (plain Python + math) so the
benchmark harness prints exactly what it computes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import StatsError


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100) by linear interpolation.

    Matches numpy's default ("linear") method so results are comparable
    with common tooling.
    """
    if not values:
        raise StatsError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise StatsError(f"percentile {p} out of [0, 100]")
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    rank = (p / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi or data[lo] == data[hi]:
        # Equal endpoints: skip interpolation, which would otherwise
        # introduce float rounding (v*0.9 + v*0.1 can exceed v).
        return float(data[lo])
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def percentiles(values: Sequence[float], ps: Iterable[float]) -> dict[float, float]:
    return {p: percentile(values, p) for p in ps}


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper aggregates multi-input benchmarks and
    suite-wide overheads geometrically)."""
    if not values:
        raise StatsError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise StatsError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_overhead(ratios: Sequence[float]) -> float:
    """Geomean of (1 + overhead) ratios, returned as an overhead."""
    return geomean([1.0 + r for r in ratios]) - 1.0


def mean(values: Sequence[float]) -> float:
    if not values:
        raise StatsError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


@dataclass(frozen=True)
class CdfPoint:
    value: float
    fraction: float


def cdf(values: Sequence[float], points: int = 200) -> list[CdfPoint]:
    """An empirical CDF downsampled to ``points`` steps (fig. 7's curve)."""
    if not values:
        return []
    data = sorted(values)
    n = len(data)
    if n <= points:
        return [CdfPoint(float(v), (i + 1) / n) for i, v in enumerate(data)]
    out = []
    for k in range(points):
        i = min(n - 1, round((k + 1) * n / points) - 1)
        out.append(CdfPoint(float(data[i]), (i + 1) / n))
    return out


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus mean (fig. 8/9's boxplots)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "BoxStats":
        if not values:
            raise StatsError("BoxStats of empty sequence")
        return cls(
            minimum=min(values),
            q1=percentile(values, 25),
            median=percentile(values, 50),
            q3=percentile(values, 75),
            maximum=max(values),
            mean=mean(values),
        )
