"""Figure-data builders: the structured series behind the paper's plots.

The benchmark harness prints text tables; these builders produce the
underlying *data* (per-benchmark overhead series, latency percentile
grids, phase-time distributions) as plain dataclasses, so downstream
tooling — a notebook, a plotting script, a regression tracker — can
consume results without re-parsing text.

Each builder takes :class:`~repro.core.metrics.RunResult` objects and is
pure data-shaping: no simulation, no I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.stats import BoxStats, median, percentile
from repro.core.config import RevokerKind
from repro.core.metrics import RunResult
from repro.machine.costs import cycles_to_micros, cycles_to_millis

#: A metric extractor over a run.
Metric = Callable[[RunResult], float]

METRIC_WALL: Metric = lambda r: float(r.wall_cycles)
METRIC_CPU: Metric = lambda r: float(r.total_cpu_cycles)
METRIC_BUS: Metric = lambda r: float(r.total_bus_transactions)
METRIC_RSS: Metric = lambda r: float(r.peak_rss_bytes)


@dataclass(frozen=True)
class OverheadPoint:
    """One bar of an overhead figure."""

    benchmark: str
    strategy: RevokerKind
    baseline: float
    test: float

    @property
    def overhead(self) -> float:
        """Fractional overhead vs baseline (0.10 = +10%)."""
        if self.baseline <= 0:
            return 0.0
        return self.test / self.baseline - 1.0

    @property
    def ratio(self) -> float:
        return self.test / self.baseline if self.baseline > 0 else 0.0


@dataclass
class OverheadSeries:
    """A fig. 1/2/4-style overhead grid: benchmarks x strategies."""

    metric_name: str
    points: list[OverheadPoint] = field(default_factory=list)

    def overhead(self, benchmark: str, strategy: RevokerKind) -> float:
        for p in self.points:
            if p.benchmark == benchmark and p.strategy == strategy:
                return p.overhead
        raise KeyError((benchmark, strategy))

    def strategy_overheads(self, strategy: RevokerKind) -> list[float]:
        return [p.overhead for p in self.points if p.strategy == strategy]

    def benchmarks(self) -> list[str]:
        seen: list[str] = []
        for p in self.points:
            if p.benchmark not in seen:
                seen.append(p.benchmark)
        return seen


def build_overhead_series(
    results: Mapping[str, Mapping[RevokerKind, RunResult]],
    metric: Metric,
    metric_name: str,
    strategies: Sequence[RevokerKind],
    baseline: RevokerKind = RevokerKind.NONE,
) -> OverheadSeries:
    """``results``: benchmark -> strategy -> RunResult (baseline included)."""
    series = OverheadSeries(metric_name)
    for bench, by_kind in results.items():
        base = metric(by_kind[baseline])
        for kind in strategies:
            series.points.append(
                OverheadPoint(bench, kind, base, metric(by_kind[kind]))
            )
    return series


@dataclass(frozen=True)
class PercentileGrid:
    """A fig. 7/8-style latency grid: strategy -> percentile -> value."""

    unit: str
    percentiles: tuple[float, ...]
    values: dict[RevokerKind, tuple[float, ...]]

    def value(self, strategy: RevokerKind, p: float) -> float:
        return self.values[strategy][self.percentiles.index(p)]

    def normalized_to(self, baseline: RevokerKind) -> "PercentileGrid":
        base = self.values[baseline]
        return PercentileGrid(
            unit="x",
            percentiles=self.percentiles,
            values={
                kind: tuple(v / b if b else 0.0 for v, b in zip(vals, base))
                for kind, vals in self.values.items()
            },
        )


def build_latency_grid(
    results: Mapping[RevokerKind, RunResult],
    percentiles: Sequence[float] = (50, 90, 95, 99, 99.9),
) -> PercentileGrid:
    values = {}
    for kind, result in results.items():
        ms = [s.millis for s in result.latencies]
        values[kind] = tuple(percentile(ms, p) for p in percentiles)
    return PercentileGrid("ms", tuple(percentiles), values)


@dataclass(frozen=True)
class PhaseBox:
    """One box of fig. 9: a phase's duration distribution."""

    benchmark: str
    strategy: RevokerKind
    phase: str  # "stw" | "concurrent" | "fault-sum"
    stats: BoxStats
    unit: str = "us"


def build_phase_boxes(
    benchmark: str,
    results: Mapping[RevokerKind, RunResult],
) -> list[PhaseBox]:
    """Extract fig. 9's per-phase duration distributions for one workload."""
    boxes: list[PhaseBox] = []
    for kind, result in results.items():
        stw = [
            cycles_to_micros(p.duration)
            for e in result.epoch_records
            for p in e.phases
            if p.kind == "stw"
        ]
        conc = [
            cycles_to_micros(p.duration)
            for e in result.epoch_records
            for p in e.phases
            if p.kind == "concurrent"
        ]
        if stw:
            boxes.append(PhaseBox(benchmark, kind, "stw", BoxStats.of(stw)))
        if conc:
            boxes.append(PhaseBox(benchmark, kind, "concurrent", BoxStats.of(conc)))
        if kind is RevokerKind.RELOADED and result.epoch_records:
            faults = [cycles_to_micros(e.fault_cycles) for e in result.epoch_records]
            boxes.append(PhaseBox(benchmark, kind, "fault-sum", BoxStats.of(faults)))
    return boxes


@dataclass(frozen=True)
class Table2Stats:
    """One row of table 2, computed from a run."""

    benchmark: str
    mean_alloc_mib: float
    sum_freed_mib: float
    freed_to_alloc: float
    revocations: int
    rev_per_sec: float
    rev_per_freed_mib: float


def build_table2_row(name: str, result: RunResult) -> Table2Stats:
    freed_mib = result.sum_freed_bytes / (1 << 20)
    return Table2Stats(
        benchmark=name,
        mean_alloc_mib=result.mean_alloc_bytes / (1 << 20),
        sum_freed_mib=freed_mib,
        freed_to_alloc=result.freed_to_alloc_ratio,
        revocations=result.revocations,
        rev_per_sec=result.revocations_per_second,
        rev_per_freed_mib=result.revocations / freed_mib if freed_mib else 0.0,
    )


@dataclass(frozen=True)
class PauseSummary:
    """Stop-the-world pause statistics for one run (the headline)."""

    strategy: RevokerKind
    count: int
    median_ms: float
    max_ms: float

    @classmethod
    def of(cls, result: RunResult) -> "PauseSummary":
        if not result.stw_pauses:
            return cls(result.revoker, 0, 0.0, 0.0)
        return cls(
            strategy=result.revoker,
            count=len(result.stw_pauses),
            median_ms=cycles_to_millis(median(result.stw_pauses)),
            max_ms=cycles_to_millis(max(result.stw_pauses)),
        )
