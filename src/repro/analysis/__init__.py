"""Analysis helpers: statistics, figure-data builders, the paper's
reported numbers, and text rendering for the harness."""

from repro.analysis import figures, paper
from repro.analysis.stats import (
    BoxStats,
    CdfPoint,
    cdf,
    geomean,
    geomean_overhead,
    mean,
    median,
    percentile,
    percentiles,
    stddev,
)
from repro.analysis.tables import bar_chart, format_percent, format_series, format_table

__all__ = [
    "BoxStats",
    "figures",
    "paper",
    "CdfPoint",
    "bar_chart",
    "cdf",
    "format_percent",
    "format_series",
    "format_table",
    "geomean",
    "geomean_overhead",
    "mean",
    "median",
    "percentile",
    "percentiles",
    "stddev",
]
