"""Parallel job execution: a process-per-job pool with timeouts, retry,
and cache integration.

Simulation jobs are seconds-to-minutes of pure Python, so the pool runs
each job in its own ``multiprocessing`` process (fork-started where
available) under a bounded concurrency limit instead of reusing long-
lived workers — that is what makes real per-job timeouts (terminate the
process) and crash detection (exit code without a result) simple and
reliable. Results cross the process boundary as serialized envelopes
(:mod:`repro.runner.serialize`), the same representation the cache
stores, so pooled, cached, and in-process execution are interchangeable
bit-for-bit.

Fault policy:

- a **crashed** worker (killed, segfaulted, exited without reporting)
  or a **timed-out** job is retried once in a fresh process; a second
  failure raises :class:`CampaignJobError`;
- a job that raises an ordinary Python exception is *not* retried — the
  simulation is deterministic, so the retry would fail identically —
  and the error is re-raised as :class:`CampaignJobError` carrying the
  worker's traceback;
- if worker processes cannot be started at all (no ``fork``/``spawn``,
  sandboxed CI, ``REPRO_JOBS=1``), execution falls back to the plain
  in-process loop, which has no extra failure modes;
- a :class:`KeyboardInterrupt` (or any other fatal error) terminates and
  joins every live worker before re-raising — an interrupted campaign
  leaves no orphaned children behind.

Jobs with identical fingerprints within one :func:`run_jobs` call are
**deduplicated**: the first occurrence executes, the rest receive a
serialized copy of its result (the serving layer leans on the same
collapse for in-flight requests; campaigns with repeated conditions get
it for free).

Environment knobs: ``REPRO_JOBS`` (worker count; ``0`` = CPU count;
default ``1`` = in-process) and ``REPRO_JOB_TIMEOUT`` (seconds per job;
default: none).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Sequence

from repro import settings
from repro.core.metrics import RunResult
from repro.errors import ReproError
from repro.runner.cache import ResultCache, job_fingerprint
from repro.runner.campaign import (
    Job,
    execute_job,
    pop_warm_start_note,
    prefix_eligible,
)
from repro.runner.progress import CampaignProgress, env_echo
from repro.runner.serialize import result_from_dict, result_to_dict
from repro.snapshot.prefix import (
    PrefixStore,
    prefix_divergence_epoch,
    prefix_key,
    prefix_store_dir,
)


class CampaignJobError(ReproError):
    """A campaign job failed (worker exception, repeated crash, or
    repeated timeout)."""


def default_max_workers() -> int:
    """Worker count from ``REPRO_JOBS`` (0 = all CPUs; default 1)."""
    return settings.max_workers()


def default_timeout_s() -> float | None:
    return settings.job_timeout_s()


def _mp_context():
    """Prefer fork (inherits runtime-registered workload kinds); fall
    back to the platform default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _pool_worker(job: Job, conn: Connection) -> None:
    """Worker-process entry: run the job, ship the serialized result."""
    try:
        envelope = result_to_dict(execute_job(job))
        conn.send(("ok", envelope, pop_warm_start_note()))
    except BaseException as exc:  # report *everything* before dying
        conn.send(("err", type(exc).__name__, str(exc), traceback.format_exc()))
    finally:
        conn.close()


@dataclass
class _Running:
    index: int
    job: Job
    process: multiprocessing.process.BaseProcess
    conn: Connection
    deadline: float | None
    started: float
    attempt: int


def run_jobs(
    jobs: Sequence[Job],
    *,
    max_workers: int | None = None,
    cache: ResultCache | None = None,
    timeout_s: float | None = None,
    progress: CampaignProgress | None = None,
) -> list[RunResult]:
    """Execute every job; returns results aligned with ``jobs``.

    Cache hits are satisfied without executing anything; fresh results
    are written back under their fingerprint. With ``max_workers=1`` the
    whole batch runs in-process, byte-identical to calling
    :func:`~repro.runner.campaign.execute_job` in a loop.
    """
    if max_workers is None:
        max_workers = default_max_workers()
    if timeout_s is None:
        timeout_s = default_timeout_s()
    if progress is None:
        progress = CampaignProgress(len(jobs), echo=env_echo())
    if progress.workers is None:
        progress.workers = max_workers

    results: list[RunResult | None] = [None] * len(jobs)
    fingerprints: list[str | None] = [None] * len(jobs)
    pending: list[int] = []
    # Jobs with identical fingerprints run once: the first occurrence is
    # the leader, the rest receive a serialized copy of its result.
    leaders: dict[str, int] = {}
    followers: dict[int, list[int]] = {}

    for i, job in enumerate(jobs):
        fingerprints[i] = job_fingerprint(job)
        if cache is not None:
            hit = cache.get(fingerprints[i])
            if hit is not None:
                results[i] = hit
                progress.job_finished(job.describe(), cached=True, elapsed=0.0)
                continue
        leader = leaders.get(fingerprints[i])
        if leader is None:
            leaders[fingerprints[i]] = i
            pending.append(i)
        else:
            followers.setdefault(leader, []).append(i)

    def finish_fresh(
        i: int, result: RunResult, elapsed: float, note: str | None = None
    ) -> None:
        results[i] = result
        if cache is not None and fingerprints[i] is not None:
            cache.put(fingerprints[i], result, job=jobs[i])
        progress.job_finished(
            jobs[i].describe(), cached=False, elapsed=elapsed, warm=note
        )
        for dup in followers.get(i, ()):
            # The round-trip hands each duplicate its own equal object,
            # exactly as if it had crossed a worker pipe itself.
            results[dup] = result_from_dict(result_to_dict(result))
            progress.job_deduped(jobs[dup].describe())

    if pending and max_workers > 1:
        pending = _run_pooled(
            jobs,
            pending,
            max_workers,
            timeout_s,
            progress,
            finish_fresh,
            _prefix_gates(jobs, pending),
        )

    # In-process path: REPRO_JOBS=1, pool unavailable, or pool leftovers.
    for i in pending:
        began = time.monotonic()
        result = execute_job(jobs[i])
        finish_fresh(i, result, time.monotonic() - began, note=pop_warm_start_note())

    return results  # type: ignore[return-value]  # every slot is filled


def _prefix_gates(jobs: Sequence[Job], pending: Sequence[int]) -> dict[int, int]:
    """Map each warm-start follower to the leader whose run will capture
    its group's prefix.

    With ``REPRO_PREFIX_DIR`` set, pending jobs that share a prefix key
    whose prefix is not yet stored must not all cold-start concurrently —
    that would re-simulate the shared warmup once per worker and store
    whichever capture linked first. Instead the first job of each group
    runs (and captures) while the rest are held back until it finishes.
    Groups whose prefix is already stored need no gate: every member
    forks immediately.
    """
    root = prefix_store_dir()
    if root is None:
        return {}
    store = PrefixStore(root)
    epoch = prefix_divergence_epoch()
    groups: dict[str, list[int]] = {}
    for i in pending:
        if not prefix_eligible(jobs[i]):
            continue
        key = prefix_key(jobs[i], epoch)
        if key in store:
            continue
        groups.setdefault(key, []).append(i)
    return {i: group[0] for group in groups.values() for i in group[1:]}


def _run_pooled(
    jobs: Sequence[Job],
    pending: list[int],
    max_workers: int,
    timeout_s: float | None,
    progress: CampaignProgress,
    finish_fresh,
    gates: dict[int, int] | None = None,
) -> list[int]:
    """Drain ``pending`` through worker processes.

    ``gates`` (follower index -> leader index) holds warm-start followers
    out of the queue until their group's prefix capture has finished.
    Returns indices that should run in-process instead (pool could not
    start at all); raises :class:`CampaignJobError` on job failure.
    """
    ctx = _mp_context()
    gates = gates or {}
    held: dict[int, list[int]] = {}
    for follower, leader in gates.items():
        held.setdefault(leader, []).append(follower)
    queue = [i for i in pending if i not in gates]
    running: dict[int, _Running] = {}

    def finish_and_release(
        index: int, result: RunResult, elapsed: float, note: str | None = None
    ) -> None:
        finish_fresh(index, result, elapsed, note)
        # The leader is done (prefix stored, or the capture window closed
        # and the group degrades to cold runs): its followers may go.
        queue.extend(sorted(held.pop(index, ())))

    def launch(index: int, attempt: int) -> bool:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_pool_worker, args=(jobs[index], child_conn), daemon=True
        )
        try:
            process.start()
        except OSError:
            parent_conn.close()
            child_conn.close()
            return False
        child_conn.close()
        now = time.monotonic()
        running[index] = _Running(
            index=index,
            job=jobs[index],
            process=process,
            conn=parent_conn,
            deadline=(now + timeout_s) if timeout_s else None,
            started=now,
            attempt=attempt,
        )
        return True

    def reap(entry: _Running) -> None:
        entry.conn.close()
        entry.process.join(timeout=5)
        if entry.process.is_alive():  # pragma: no cover - stuck worker
            entry.process.kill()
            entry.process.join()

    def abort_all() -> None:
        # Two-phase teardown so an interrupt (^C) cannot orphan workers:
        # signal every live process *first*, then join — a second
        # KeyboardInterrupt landing mid-join still finds everyone already
        # terminating, and the finally sweep kills any straggler.
        try:
            for entry in running.values():
                try:
                    entry.process.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass
            for entry in running.values():
                entry.conn.close()
                entry.process.join(timeout=5)
        finally:
            for entry in running.values():
                if entry.process.is_alive():
                    entry.process.kill()
                    entry.process.join(timeout=5)
            running.clear()

    def crash_or_retry(entry: _Running, reason: str) -> None:
        del running[entry.index]
        reap(entry)
        if entry.attempt == 0:
            progress.job_retried(entry.job.describe(), reason)
            if not launch(entry.index, attempt=1):  # pragma: no cover
                queue.append(entry.index)
        else:
            progress.job_failed(entry.job.describe(), reason)
            abort_all()
            raise CampaignJobError(
                f"job {entry.job.describe()} failed twice: {reason}"
            )

    try:
        while queue or running:
            while queue and len(running) < max_workers:
                index = queue.pop(0)
                if not launch(index, attempt=0):
                    # Cannot start processes here: hand everything still
                    # unstarted back to the in-process loop.
                    leftovers = [index] + queue
                    queue.clear()
                    while running:
                        _wait_one(
                            running, progress, finish_and_release, crash_or_retry
                        )
                    # Followers released while draining, then any still
                    # held: list order keeps each leader ahead of its
                    # group, so the in-process loop still warm-starts.
                    leftovers.extend(queue)
                    leftovers.extend(
                        sorted(i for group in held.values() for i in group)
                    )
                    return leftovers
            _wait_one(running, progress, finish_and_release, crash_or_retry)
    except BaseException:
        abort_all()
        raise
    return []


def _wait_one(
    running: dict[int, _Running],
    progress: CampaignProgress,
    finish_fresh,
    crash_or_retry,
) -> None:
    """Block briefly; settle every worker that finished, crashed, or
    timed out."""
    if not running:
        return
    now = time.monotonic()
    wait_for = 0.25
    for entry in running.values():
        if entry.deadline is not None:
            wait_for = min(wait_for, max(0.0, entry.deadline - now))
    ready = connection_wait([e.conn for e in running.values()], timeout=wait_for)
    ready_set = set(ready)
    now = time.monotonic()
    for entry in list(running.values()):
        if entry.conn in ready_set:
            try:
                message = entry.conn.recv()
            except EOFError:
                # Pipe closed with nothing sent: the worker died.
                entry.process.join(timeout=5)
                crash_or_retry(
                    entry, f"worker exited (code {entry.process.exitcode})"
                )
                continue
            del running[entry.index]
            reaped = entry
            reaped.conn.close()
            reaped.process.join()
            if message[0] == "ok":
                finish_fresh(
                    entry.index,
                    result_from_dict(message[1]),
                    now - entry.started,
                    message[2] if len(message) > 2 else None,
                )
            else:
                _, name, text, trace = message
                progress.job_failed(entry.job.describe(), f"{name}: {text}")
                raise CampaignJobError(
                    f"job {entry.job.describe()} raised {name}: {text}\n{trace}"
                )
        elif entry.deadline is not None and now >= entry.deadline:
            entry.process.terminate()
            crash_or_retry(entry, f"timeout after {now - entry.started:.1f}s")
        elif entry.process.exitcode is not None and not entry.conn.poll():
            crash_or_retry(
                entry, f"worker exited (code {entry.process.exitcode})"
            )
