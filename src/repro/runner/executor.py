"""The executor seam: campaign execution as a swappable backend.

:func:`~repro.runner.pool.run_jobs` bakes in one execution strategy —
the local fork-per-job process pool. The :class:`Executor` protocol
lifts that choice out of the campaign layer: anything that can take a
job list and return results aligned with it (cache hits satisfied
locally, fresh results written back) is a campaign backend.

Two implementations ship:

- :class:`PoolExecutor` — the local pool, a thin wrapper over
  :func:`run_jobs`; the default everywhere and the reference semantics
  (bit-for-bit identical to serial in-process execution);
- :class:`~repro.dist.DistributedExecutor` — shards the batch across
  remote ``repro.serve`` daemons by consistent-hashing each job's
  fingerprint (docs/DIST.md).

The contract every backend must honor, pinned by the dist test suite's
bit-identity checks:

- results align index-for-index with ``jobs``;
- a local ``cache`` is consulted first and fresh results are written
  back to it, so a re-run is all cache hits regardless of backend;
- duplicate fingerprints within one batch execute once;
- ``progress`` (when given) sees every job exactly once — as a cache
  hit, a fresh completion, a dedup, or a terminal failure — so
  ``progress.done`` reaches ``len(jobs)`` even on error paths;
- terminal per-job failures raise
  :class:`~repro.runner.pool.CampaignJobError` only after every other
  job has settled (no lost work behind the first failure).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.core.metrics import RunResult
from repro.runner.pool import run_jobs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.cache import ResultCache
    from repro.runner.campaign import Job
    from repro.runner.progress import CampaignProgress


@runtime_checkable
class Executor(Protocol):
    """Anything that can execute a campaign's job batch."""

    def run(
        self,
        jobs: Sequence["Job"],
        *,
        cache: "ResultCache | None" = None,
        timeout_s: float | None = None,
        progress: "CampaignProgress | None" = None,
    ) -> list[RunResult]:
        """Execute every job; return results aligned with ``jobs``."""
        ...


class PoolExecutor:
    """The local process-pool backend (the :func:`run_jobs` semantics).

    ``max_workers=None`` defers to ``REPRO_JOBS`` at run time; an
    explicit value pins it (CLI flag > env > default).
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers

    def run(
        self,
        jobs: Sequence["Job"],
        *,
        cache: "ResultCache | None" = None,
        timeout_s: float | None = None,
        progress: "CampaignProgress | None" = None,
    ) -> list[RunResult]:
        return run_jobs(
            jobs,
            max_workers=self.max_workers,
            cache=cache,
            timeout_s=timeout_s,
            progress=progress,
        )
