"""Content-addressed on-disk result cache.

A job's **fingerprint** is a SHA-256 over the canonical JSON of
everything that determines its :class:`RunResult`:

- the workload spec (builder kind + every parameter — the harness's
  scale/transaction/duration env knobs land here);
- the revocation strategy and the declarative config overrides;
- the serialized-result ``FORMAT_VERSION``;
- a **code fingerprint**: a digest of every simulation-relevant source
  file of the installed ``repro`` package (core, machine, kernel, alloc,
  workloads, obs, extensions — everything except the runner itself and
  the tooling layers: analysis, serve, perf, check, the CLI). Touch the
  simulator and every cached result silently invalidates; touch only
  tooling and the cache stays warm.

Entries are one JSON file each under ``<root>/objects/<aa>/<hash>.json``
(first byte of the fingerprint as a fan-out directory). Writes go
through a same-directory temp file and ``os.replace`` so concurrent
campaign processes can share one cache without torn reads.

The default root is ``$REPRO_CACHE_DIR``, else
``~/.cache/repro/results``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Mapping

import repro
from repro import settings
from repro.core.metrics import RunResult
from repro.runner.campaign import Job
from repro.runner.serialize import (
    FORMAT_VERSION,
    SerializationError,
    canonical_json,
    result_from_dict,
    result_to_dict,
)

#: Package sub-trees whose source does not influence simulation results:
#: orchestration (runner), presentation (analysis, cli), the serving
#: daemon, the benchmark harness, and the validation suites. ``obs/``
#: stays *in* — the tracer and metric observers feed ``RunResult``.
_NON_SIMULATION_PARTS = (
    "runner",
    "analysis",
    "serve",
    "perf",
    "check",
    "dist",
    "cli",
    "cli.py",
    "api.py",
    "settings.py",
    "__main__.py",
)

_code_fingerprint_cache: str | None = None


def _simulation_sources(root: Path) -> Iterable[Path]:
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if not any(
            rel == part or rel.startswith(part + "/")
            for part in _NON_SIMULATION_PARTS
        ):
            yield path


def code_fingerprint() -> str:
    """Digest of the simulation-relevant ``repro`` sources (cached per
    process; the package does not change under a running campaign)."""
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in _simulation_sources(root):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint_cache = digest.hexdigest()
    return _code_fingerprint_cache


def job_fingerprint(job: Job, code_version: str | None = None) -> str:
    """The content address of one job's result."""
    material = {
        "format": FORMAT_VERSION,
        "code": code_version if code_version is not None else code_fingerprint(),
        "job": job.to_dict(),
    }
    if settings.trace_dir() is not None:
        # Traced runs carry the observability metrics fold in their
        # RunResult; keep them from colliding with untraced results.
        material["trace"] = True
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()


def default_cache_dir() -> Path:
    env = settings.cache_dir()
    if env is not None:
        return env
    return Path.home() / ".cache" / "repro" / "results"


class ResultCache:
    """Content-addressed store of serialized :class:`RunResult`\\ s."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path_of(self, fingerprint: str) -> Path:
        return self.root / "objects" / fingerprint[:2] / f"{fingerprint}.json"

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def get_envelope(self, fingerprint: str) -> dict[str, Any] | None:
        """The cached serialized envelope, or None on miss.

        The serving layer answers cache hits straight from this — the
        envelope is already the wire representation, so no
        decode/re-encode round-trip through :class:`RunResult` is paid.
        Corrupt entries (torn writes from dead processes, stale schema)
        count as misses and are removed.
        """
        path = self._path_of(fingerprint)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            envelope = json.loads(text)
            if not isinstance(envelope, dict):
                raise SerializationError("envelope is not a JSON object")
            if envelope.get("fingerprint") != fingerprint:
                raise SerializationError("fingerprint mismatch")
            if envelope.get("format") != FORMAT_VERSION:
                raise SerializationError("stale format version")
        except (SerializationError, ValueError):
            self._discard(path)
            return None
        return envelope

    def get(self, fingerprint: str) -> RunResult | None:
        """The cached result, or None on miss (see :meth:`get_envelope`)."""
        envelope = self.get_envelope(fingerprint)
        if envelope is None:
            return None
        try:
            return result_from_dict(envelope)
        except SerializationError:
            self._discard(self._path_of(fingerprint))
            return None

    def put_envelope(
        self,
        fingerprint: str,
        envelope: Mapping[str, Any],
        job: Job | None = None,
    ) -> Path:
        """Atomically persist an already-serialized result envelope (what
        pool and serve workers ship across process boundaries) without a
        decode/encode round-trip."""
        if envelope.get("format") != FORMAT_VERSION:
            raise SerializationError(
                f"envelope format {envelope.get('format')!r} != "
                f"supported {FORMAT_VERSION}"
            )
        path = self._path_of(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = dict(envelope)
        envelope["fingerprint"] = fingerprint
        if job is not None:
            envelope["job"] = job.to_dict()
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(canonical_json(envelope))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def put(self, fingerprint: str, result: RunResult, job: Job | None = None) -> Path:
        """Atomically persist a result under its fingerprint."""
        return self.put_envelope(fingerprint, result_to_dict(result), job=job)

    def __contains__(self, fingerprint: str) -> bool:
        return self._path_of(fingerprint).exists()

    def entries(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))
