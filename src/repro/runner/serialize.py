"""Lossless JSON serialization for run results and configurations.

The campaign runner needs two representations:

- **results** (:class:`~repro.core.metrics.RunResult` and its nested
  :class:`~repro.core.metrics.LatencySample` /
  :class:`~repro.kernel.revoker.base.EpochRecord` /
  :class:`~repro.kernel.revoker.base.PhaseSample` records) round-trip
  through JSON so the on-disk cache and pool workers can hand results
  across process boundaries without losing a field — deserialized
  results compare ``==`` to the originals;
- **configurations** (:class:`~repro.core.config.SimulationConfig` with
  its nested machine shape, cost model, and quarantine policy) flatten
  to plain JSON-able dicts so cache fingerprints can cover every knob.

``FORMAT_VERSION`` is stamped into every serialized result and mixed
into cache fingerprints: bump it whenever the :class:`RunResult` schema
changes shape, and every stale cache entry invalidates itself.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping

from repro.core.config import RevokerKind, SimulationConfig
from repro.core.metrics import LatencySample, RunResult
from repro.errors import ReproError
from repro.kernel.revoker.base import EpochRecord, PhaseSample

#: Schema version of the serialized result envelope.
#: v2: RunResult grew the ``metrics`` observability fold.
FORMAT_VERSION = 2


class SerializationError(ReproError):
    """A result envelope could not be decoded (wrong version, missing or
    unknown fields)."""


# --- Results ----------------------------------------------------------------


def result_to_dict(result: RunResult) -> dict[str, Any]:
    """Encode a :class:`RunResult` as a JSON-able envelope."""
    data = dataclasses.asdict(result)
    data["revoker"] = result.revoker.value
    return {"format": FORMAT_VERSION, "result": data}


def _epoch_from_dict(data: Mapping[str, Any]) -> EpochRecord:
    fields = dict(data)
    try:
        fields["phases"] = [PhaseSample(**p) for p in fields.get("phases", ())]
        return EpochRecord(**fields)
    except TypeError as exc:
        raise SerializationError(f"bad epoch record: {exc}") from exc


def result_from_dict(envelope: Mapping[str, Any]) -> RunResult:
    """Decode :func:`result_to_dict`'s envelope back into a
    :class:`RunResult` equal to the original."""
    version = envelope.get("format")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"result format {version!r} != supported {FORMAT_VERSION}"
        )
    data = dict(envelope["result"])
    try:
        data["revoker"] = RevokerKind(data["revoker"])
        data["latencies"] = [LatencySample(**s) for s in data.get("latencies", ())]
        data["epoch_records"] = [
            _epoch_from_dict(e) for e in data.get("epoch_records", ())
        ]
        return RunResult(**data)
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"bad result envelope: {exc}") from exc


def dumps_result(result: RunResult) -> str:
    """Serialize to a canonical (sorted-key) JSON string."""
    return json.dumps(result_to_dict(result), sort_keys=True, separators=(",", ":"))


def loads_result(text: str) -> RunResult:
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid result JSON: {exc}") from exc
    if not isinstance(envelope, dict):
        raise SerializationError("result envelope is not a JSON object")
    return result_from_dict(envelope)


# --- Configurations ---------------------------------------------------------


def config_to_dict(config: SimulationConfig) -> dict[str, Any]:
    """Flatten a :class:`SimulationConfig` (machine, cost model, policy
    and all) to a JSON-able dict, for fingerprinting.

    Not meant to round-trip — configs are rebuilt from campaign specs —
    but it must cover *every* field so any config change perturbs the
    fingerprint.
    """
    data = dataclasses.asdict(config)
    data["revoker"] = config.revoker.value
    if config.custom_revoker is not None:
        cls = config.custom_revoker
        data["custom_revoker"] = f"{cls.__module__}:{cls.__qualname__}"
    return data


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for fingerprint material."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))
