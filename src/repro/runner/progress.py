"""Campaign progress reporting: per-job lines, ETA, and the cache-hit
summary.

Silent by default (the benchmark harness runs under pytest's capture);
set ``REPRO_PROGRESS=1`` — or pass an explicit ``echo`` callable — to
stream one line per finished job with a running ETA. The final
:meth:`CampaignProgress.summary` is what ``python -m repro campaign``
prints, and its ``cache-hits=N fresh=M`` tail is machine-parseable (the
CI smoke job greps it).
"""

from __future__ import annotations

import math
import sys
import time
from typing import Any, Callable

from repro import settings

Echo = Callable[[str], None]


def _default_echo(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


def env_echo() -> Echo | None:
    """The echo callable implied by ``REPRO_PROGRESS`` (None = silent)."""
    if settings.progress_enabled():
        return _default_echo
    return None


class CampaignProgress:
    """Counts job outcomes and estimates time remaining.

    ETA extrapolates from the mean wall time of *fresh* (non-cached)
    jobs only — cache hits are near-free and would otherwise make the
    estimate absurdly optimistic.
    """

    def __init__(
        self,
        total: int,
        echo: Echo | None = None,
        workers: int | None = None,
    ) -> None:
        self.total = total
        self.echo = echo
        #: Worker processes draining the queue; the pool fills this in
        #: (when left None) so the ETA reflects parallelism. 1 = serial.
        self.workers = workers
        self.done = 0
        self.cache_hits = 0
        self.fresh = 0
        self.deduped = 0
        self.retries = 0
        self.failures = 0
        self.prefix_hits = 0
        self.prefix_captures = 0
        self._fresh_seconds = 0.0
        self._started = time.monotonic()

    # --- Event hooks (called by the pool) --------------------------------

    def job_finished(
        self,
        label: str,
        *,
        cached: bool,
        elapsed: float,
        warm: str | None = None,
    ) -> None:
        self.done += 1
        if cached:
            self.cache_hits += 1
        else:
            self.fresh += 1
            self._fresh_seconds += elapsed
        if warm == "hit":
            self.prefix_hits += 1
        elif warm == "capture":
            self.prefix_captures += 1
        if self.echo is not None:
            origin = "cache" if cached else f"{elapsed:.2f}s"
            if warm is not None:
                origin += f", prefix {warm}"
            eta = self.eta_seconds()
            eta_text = f" eta {eta:.0f}s" if eta is not None else ""
            self.echo(
                f"[{self.done}/{self.total}] {label} ({origin}){eta_text}"
            )

    def job_deduped(self, label: str) -> None:
        """A job that never ran: its fingerprint matched another job in
        the same batch, so it received a copy of that job's result."""
        self.done += 1
        self.deduped += 1
        if self.echo is not None:
            self.echo(f"[{self.done}/{self.total}] {label} (dedup)")

    def job_retried(self, label: str, reason: str) -> None:
        self.retries += 1
        if self.echo is not None:
            self.echo(f"[retry] {label}: {reason}")

    def job_failed(self, label: str, reason: str) -> None:
        """A job reached a terminal failure. It is *done* — nothing will
        run it again — so it counts toward ``done`` (else ``summary()``
        stays short of ``total`` forever and the ETA never reaches zero);
        ``failures`` keeps the separate tally."""
        self.done += 1
        self.failures += 1
        if self.echo is not None:
            self.echo(f"[fail] {label}: {reason}")

    # --- Derived ---------------------------------------------------------

    def mean_fresh_seconds(self) -> float | None:
        if not self.fresh:
            return None
        return self._fresh_seconds / self.fresh

    def eta_seconds(self) -> float | None:
        """Projected seconds to finish the remaining jobs: 0.0 once every
        job has settled (finished, deduped, or terminally failed), None
        until a fresh job has completed to calibrate on.

        The remaining jobs drain ``workers`` at a time, so the projection
        is mean x ceil(remaining / workers) — not remaining x mean, which
        overestimates by ~the worker count under ``REPRO_JOBS=N``.
        """
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        mean = self.mean_fresh_seconds()
        if mean is None:
            return None
        workers = max(1, self.workers or 1)
        return mean * math.ceil(remaining / workers)

    def elapsed_seconds(self) -> float:
        return time.monotonic() - self._started

    def hit_ratio(self) -> float:
        return self.cache_hits / self.done if self.done else 0.0

    def summary(self) -> str:
        parts = [
            f"{self.done}/{self.total} jobs in {self.elapsed_seconds():.1f}s",
        ]
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.failures:
            parts.append(f"{self.failures} failed")
        mean = self.mean_fresh_seconds()
        if mean is not None:
            parts.append(f"mean {mean:.2f}s/fresh job")
        tail = f" | cache-hits={self.cache_hits} fresh={self.fresh}"
        if self.deduped:
            tail += f" deduped={self.deduped}"
        if self.prefix_hits or self.prefix_captures:
            tail += (
                f" prefix-hits={self.prefix_hits}"
                f" prefix-captures={self.prefix_captures}"
            )
        return ", ".join(parts) + tail

    def as_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "done": self.done,
            "cache_hits": self.cache_hits,
            "fresh": self.fresh,
            "deduped": self.deduped,
            "retries": self.retries,
            "failures": self.failures,
            "prefix_hits": self.prefix_hits,
            "prefix_captures": self.prefix_captures,
            "elapsed_seconds": self.elapsed_seconds(),
        }
