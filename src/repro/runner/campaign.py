"""Declarative experiment campaigns.

A campaign is a condition matrix — workloads x revocation strategies x
seeds — expanded into independent :class:`Job`\\ s. Jobs are plain data
(JSON-able, picklable), so they can be fingerprinted for the result
cache, shipped to pool workers, or written down in a campaign spec file
and replayed later. Workloads are *described*, not constructed: a
:class:`WorkloadSpec` names a registered builder plus its keyword
parameters, and each executing process builds its own fresh workload
object (workloads are stateful; one per run).

The built-in builders cover the paper's evaluation workloads:

- ``spec``     — :func:`repro.workloads.spec.workload` (params:
  ``benchmark``, ``input``, ``scale``, ``seed``);
- ``pgbench``  — :class:`repro.workloads.pgbench.PgBenchWorkload`
  (params: ``transactions``, ``rate_tps``, ``scale``, ``seed``);
- ``grpc``     — :class:`repro.workloads.grpc_qps.GrpcQpsWorkload`
  (params: ``duration_seconds``, ``scale``, ``seed``).

Extensions register more with :func:`register_workload`.
"""

from __future__ import annotations

import hashlib
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro import settings
from repro.core.config import RevokerKind, SimulationConfig
from repro.core.experiment import run_experiment
from repro.core.metrics import RunResult
from repro.errors import ConfigError
from repro.runner.serialize import canonical_json
from repro.snapshot.prefix import prefix_store_dir
from repro.workloads.base import Workload

#: Builds a fresh workload from a spec's keyword parameters.
WorkloadBuilder = Callable[..., Workload]

_BUILDERS: dict[str, WorkloadBuilder] = {}


def register_workload(kind: str, builder: WorkloadBuilder) -> None:
    """Register (or replace) a workload builder under ``kind``."""
    _BUILDERS[kind] = builder


def registered_workloads() -> tuple[str, ...]:
    return tuple(sorted(_BUILDERS))


def _build_spec(**params: Any) -> Workload:
    from repro.workloads import spec

    return spec.workload(**params)


def _build_pgbench(**params: Any) -> Workload:
    from repro.workloads.pgbench import PgBenchWorkload

    return PgBenchWorkload(**params)


def _build_grpc(**params: Any) -> Workload:
    from repro.workloads.grpc_qps import GrpcQpsWorkload

    return GrpcQpsWorkload(**params)


register_workload("spec", _build_spec)
register_workload("pgbench", _build_pgbench)
register_workload("grpc", _build_grpc)


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative workload description: builder kind + parameters."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> Workload:
        builder = _BUILDERS.get(self.kind)
        if builder is None:
            known = ", ".join(registered_workloads())
            raise ConfigError(
                f"unknown workload kind {self.kind!r}; registered: {known}"
            )
        try:
            return builder(**dict(self.params))
        except TypeError as exc:
            raise ConfigError(
                f"bad parameters for workload kind {self.kind!r}: {exc}"
            ) from exc

    def with_params(self, **updates: Any) -> "WorkloadSpec":
        merged = dict(self.params)
        merged.update(updates)
        return WorkloadSpec(self.kind, merged)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}


@dataclass(frozen=True)
class Job:
    """One independent experiment: a workload under one strategy.

    ``config`` holds declarative :class:`SimulationConfig` overrides —
    top-level scalar fields (``app_core``, ``revoker_core``) plus the
    nested ``machine`` and ``policy`` sub-dicts. ``key`` is an opaque
    caller-side identity used to map results back (e.g. the harness's
    ``(bench, input, kind)`` tuples); it does not affect execution or
    fingerprints.
    """

    workload: WorkloadSpec
    revoker: RevokerKind
    config: Mapping[str, Any] = field(default_factory=dict)
    key: Any = None

    def describe(self) -> str:
        params = ",".join(f"{k}={v}" for k, v in sorted(self.workload.params.items()))
        return f"{self.workload.kind}({params})/{self.revoker.value}"

    def to_dict(self) -> dict[str, Any]:
        """Execution-relevant identity (``key`` deliberately excluded)."""
        return {
            "workload": self.workload.to_dict(),
            "revoker": self.revoker.value,
            "config": dict(self.config),
        }


def job_from_dict(data: Mapping[str, Any], key: Any = None) -> Job:
    """Inverse of :meth:`Job.to_dict` — the representation jobs travel in
    over the serve wire protocol and inside cache envelopes."""
    if not isinstance(data, Mapping):
        raise ConfigError(f"job must be an object, got {type(data).__name__}")
    unknown = set(data) - {"workload", "revoker", "config"}
    if unknown:
        raise ConfigError(f"job: unknown fields {sorted(unknown)}")
    try:
        workload = data["workload"]
        spec = WorkloadSpec(str(workload["kind"]), dict(workload.get("params", {})))
        revoker = RevokerKind(data["revoker"])
    except KeyError as exc:
        raise ConfigError(f"job missing field: {exc}") from exc
    except (TypeError, ValueError, AttributeError) as exc:
        raise ConfigError(f"bad job: {exc}") from exc
    config = data.get("config", {})
    if not isinstance(config, Mapping):
        raise ConfigError("job: config must be an object")
    return Job(workload=spec, revoker=revoker, config=dict(config), key=key)


def build_config(job: Job) -> SimulationConfig:
    """Materialize a job's :class:`SimulationConfig` from its overrides."""
    from repro.alloc.quarantine import QuarantinePolicy

    cfg = SimulationConfig(revoker=job.revoker)
    for name, value in job.config.items():
        if name == "machine":
            for mfield, mvalue in value.items():
                if not hasattr(cfg.machine, mfield) or mfield == "costs":
                    raise ConfigError(f"unknown machine override {mfield!r}")
                setattr(cfg.machine, mfield, mvalue)
        elif name == "policy":
            try:
                cfg.policy = QuarantinePolicy(**value)
            except TypeError as exc:
                raise ConfigError(f"bad policy override: {exc}") from exc
        elif name in ("app_core", "revoker_core"):
            setattr(cfg, name, value)
        else:
            raise ConfigError(f"unknown config override {name!r}")
    cfg.validate()
    return cfg


def trace_artifact_dir() -> Path | None:
    """Where per-job trace JSONL artifacts go (``$REPRO_TRACE_DIR``), or
    None when tracing is off. Inherited by pool worker processes, so the
    whole campaign traces uniformly."""
    return settings.trace_dir()


def snapshot_artifact_dir() -> Path | None:
    """Where per-job checkpoint files go (``$REPRO_SNAPSHOT_DIR``), or
    None when checkpointing is off. Inherited by pool worker and serve
    worker processes, so a job killed mid-run (crash, timeout, eviction)
    resumes from its last epoch-close checkpoint on retry instead of
    recomputing completed epochs."""
    return settings.snapshot_dir()


def job_trace_slug(job: Job) -> str:
    """A filesystem-safe, collision-free artifact name for one job."""
    human = re.sub(r"[^A-Za-z0-9._-]+", "-", job.describe()).strip("-")
    digest = hashlib.sha256(canonical_json(job.to_dict()).encode()).hexdigest()[:10]
    return f"{human}-{digest}"


#: Checkpoint cadence for runner-managed snapshots: every epoch close
#: under a revoker, every this-many work-unit polls under NONE.
_SNAPSHOT_EVERY_CHECKS = 256

#: How the last executed job in this process came by its result:
#: ``"hit"`` (forked from a stored prefix) or ``"capture"`` (ran cold and
#: stored the prefix). Module-global so the pool worker can ship it back
#: over the result pipe alongside the envelope.
_warm_start_note: str | None = None


def _note_warm_start(note: str) -> None:
    global _warm_start_note
    _warm_start_note = note


def pop_warm_start_note() -> str | None:
    """Consume the warm-start outcome of the most recent
    :func:`execute_job` in this process (None = cold, no prefix store)."""
    global _warm_start_note
    note = _warm_start_note
    _warm_start_note = None
    return note


def prefix_eligible(job: Job) -> bool:
    """Can this job participate in warm-start prefix sharing? The NONE
    baseline runs a different allocator shim, and only snapshot-capable
    workloads can park for a capture."""
    if job.revoker is RevokerKind.NONE:
        return False
    try:
        workload = job.workload.build()
    except ConfigError:
        return False
    return bool(getattr(workload, "supports_snapshot", False))


def _run_warm(job: Job, workload: Workload, fingerprint: str) -> RunResult | None:
    """The warm-start path: fork this job off its group's stored prefix,
    or run cold while capturing the prefix for the rest of the group.
    Returns None when a stored prefix exists but cannot be used (corrupt,
    stale format, tracer mismatch) — the caller then runs cold."""
    from repro.core.simulation import Simulation
    from repro.errors import SnapshotError
    from repro.snapshot import SnapshotSession
    from repro.snapshot.prefix import (
        PrefixStore,
        fork_simulation,
        prefix_divergence_epoch,
        prefix_key,
        prefix_plan,
    )

    store = PrefixStore(prefix_store_dir())
    epoch = prefix_divergence_epoch()
    key = prefix_key(job, epoch)
    data = store.get(key)
    if data is not None:
        try:
            sim, _header = fork_simulation(data, job.revoker)
            result = sim.resume()
        except SnapshotError:
            # Corrupt, truncated, or incompatible prefix: recompute from
            # scratch rather than resume wrong state.
            return None
        _note_warm_start("hit")
        return result

    sim = Simulation(workload, build_config(job))
    session = SnapshotSession(sim, prefix_plan(epoch))
    session.header_extra["job_fingerprint"] = fingerprint
    session.header_extra["prefix_key"] = key
    result = sim.run(snapshots=session)
    # Captures are buffered, not sunk per rung: only the deepest capture
    # of the staged ladder is worth keeping, and put_if_absent means two
    # runs racing on one prefix can never double-store it.
    if session.captured and store.put_if_absent(key, session.captured[-1]):
        _note_warm_start("capture")
    return result


def _run_job(job: Job) -> RunResult:
    """Run — or, given a matching checkpoint or warm-start prefix,
    resume — one job's simulation. The determinism contract
    (docs/SNAPSHOT.md, docs/WARMSTART.md) makes the three
    indistinguishable from the result side.

    Precedence: a further-along matching per-job checkpoint
    (``REPRO_SNAPSHOT_DIR``) wins over a prefix fork; otherwise warm-start
    (``REPRO_PREFIX_DIR``) wins over per-epoch checkpointing — a run can
    only carry one snapshot session, and the prefix capture is the one
    the rest of the group is waiting on."""
    workload = job.workload.build()
    snap_dir = snapshot_artifact_dir()
    warm = prefix_store_dir() is not None and prefix_eligible(job)
    if snap_dir is None and not warm:
        return run_experiment(workload, job.revoker, build_config(job))

    from repro.core.simulation import Simulation
    from repro.errors import SnapshotError
    from repro.obs.tracer import TRACER
    from repro.runner.cache import job_fingerprint
    from repro.snapshot import (
        SnapshotPlan,
        SnapshotSession,
        read_header,
        restore_simulation,
    )

    fingerprint = job_fingerprint(job)

    if snap_dir is not None:
        path = snap_dir / f"{job_trace_slug(job)}.ckpt"
        tmp = path.with_name(path.name + ".tmp")

        def sink(blob: bytes, header: Mapping[str, Any]) -> None:
            # Atomic replace: a crash mid-write leaves the previous
            # (valid) checkpoint; the trailing digest catches anything
            # else.
            snap_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            os.replace(tmp, path)

        if path.exists():
            data = path.read_bytes()
            try:
                header = read_header(data)
                if (
                    header.get("job_fingerprint") == fingerprint
                    and header.get("traced") == TRACER.enabled
                ):
                    sim, _ = restore_simulation(data, sink=sink)
                    return sim.resume()
            except SnapshotError:
                # Stale, corrupt, or truncated checkpoint: recompute from
                # scratch rather than resume wrong state.
                pass

    if warm:
        result = _run_warm(job, workload, fingerprint)
        if result is not None:
            return result

    if snap_dir is None or not getattr(workload, "supports_snapshot", False):
        return run_experiment(workload, job.revoker, build_config(job))
    sim = Simulation(workload, build_config(job))
    session = SnapshotSession(
        sim,
        SnapshotPlan(every_epochs=1, every_checks=_SNAPSHOT_EVERY_CHECKS),
        sink=sink,
    )
    session.header_extra["job_fingerprint"] = fingerprint
    return sim.run(snapshots=session)


def execute_job(job: Job) -> RunResult:
    """Run one job to completion in this process (the pure function pool
    workers and the in-process fallback both call).

    With ``REPRO_TRACE_DIR`` set, the run records a structured trace and
    writes it as ``<dir>/<slug>.jsonl`` (cache hits skip execution and so
    produce no artifact — trace campaigns with ``--no-cache``). With
    ``REPRO_SNAPSHOT_DIR`` set, snapshot-capable jobs checkpoint at every
    epoch close and resume from ``<dir>/<slug>.ckpt`` when one matching
    the job fingerprint is present."""
    trace_dir = trace_artifact_dir()
    if trace_dir is None:
        return _run_job(job)

    from repro.obs.export import write_jsonl
    from repro.obs.tracer import TRACER

    TRACER.start()
    try:
        result = _run_job(job)
        events = TRACER.events()
        meta = {
            "job": job.describe(),
            "workload": job.workload.build().name,
            "revoker": job.revoker.value,
            "wall_cycles": result.wall_cycles,
            "dropped": TRACER.dropped,
        }
    finally:
        TRACER.stop()
    trace_dir.mkdir(parents=True, exist_ok=True)
    write_jsonl(trace_dir / f"{job_trace_slug(job)}.jsonl", events, meta)
    return result


def stable_seed(*parts: Any, bits: int = 48) -> int:
    """A deterministic seed derived from arbitrary JSON-able parts.

    Independent of ``PYTHONHASHSEED`` and stable across processes and
    sessions, so replicate seeds derived during campaign expansion are
    reproducible.
    """
    digest = hashlib.blake2b(
        canonical_json(list(parts)).encode(), digest_size=bits // 8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass
class CampaignSpec:
    """A declarative condition matrix.

    ``seeds`` lists explicit workload seeds (each is injected as the
    ``seed`` parameter of every workload); ``None`` keeps each
    workload's built-in default seed. ``replicates`` instead derives
    that many deterministic per-job seeds via :func:`stable_seed`.
    """

    name: str
    workloads: Sequence[WorkloadSpec]
    revokers: Sequence[RevokerKind]
    seeds: Sequence[int] | None = None
    replicates: int | None = None
    config: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seeds is not None and self.replicates is not None:
            raise ConfigError("campaign: give seeds or replicates, not both")
        if self.replicates is not None and self.replicates < 1:
            raise ConfigError("campaign: replicates must be >= 1")
        if not self.workloads:
            raise ConfigError("campaign: no workloads")
        if not self.revokers:
            raise ConfigError("campaign: no revokers")

    def _seeds_for(self, workload: WorkloadSpec, revoker: RevokerKind) -> list[int | None]:
        if self.seeds is not None:
            return list(self.seeds)
        if self.replicates is not None:
            return [
                stable_seed(self.name, workload.to_dict(), revoker.value, i)
                for i in range(self.replicates)
            ]
        return [None]

    def expand(self) -> list[Job]:
        """The full job matrix, in deterministic workload-major order.

        Each job's ``key`` is ``(workload_index, revoker, seed)``.
        """
        jobs: list[Job] = []
        for index, workload in enumerate(self.workloads):
            for revoker in self.revokers:
                for seed in self._seeds_for(workload, revoker):
                    spec = workload if seed is None else workload.with_params(seed=seed)
                    jobs.append(
                        Job(
                            workload=spec,
                            revoker=revoker,
                            config=dict(self.config),
                            key=(index, revoker, seed),
                        )
                    )
        return jobs

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Parse the JSON campaign-spec format (see docs/RUNNER.md)."""
        try:
            workloads = [
                WorkloadSpec(w["kind"], dict(w.get("params", {})))
                for w in data["workloads"]
            ]
            revokers = [RevokerKind(r) for r in data["revokers"]]
        except KeyError as exc:
            raise ConfigError(f"campaign spec missing field: {exc}") from exc
        except ValueError as exc:
            raise ConfigError(f"campaign spec: {exc}") from exc
        unknown = set(data) - {
            "name", "workloads", "revokers", "seeds", "replicates", "config",
        }
        if unknown:
            raise ConfigError(f"campaign spec: unknown fields {sorted(unknown)}")
        return cls(
            name=str(data.get("name", "campaign")),
            workloads=workloads,
            revokers=revokers,
            seeds=data.get("seeds"),
            replicates=data.get("replicates"),
            config=dict(data.get("config", {})),
        )
