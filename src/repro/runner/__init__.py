"""``repro.runner`` — the parallel, cached experiment campaign engine.

The benchmark harness, the ``python -m repro campaign`` CLI, and any
future sweep all submit work the same way: describe jobs declaratively
(:class:`~repro.runner.campaign.Job` /
:class:`~repro.runner.campaign.CampaignSpec`), then hand them to
:func:`run_jobs` or :func:`run_campaign`. The engine takes care of

- **caching** — content-addressed on-disk results keyed by workload
  spec, config, and simulator code version (:mod:`repro.runner.cache`);
- **parallelism** — a fault-tolerant worker pool with per-job timeouts
  and graceful in-process fallback (:mod:`repro.runner.pool`);
- **determinism** — jobs carry explicit seeds and run one-workload-per-
  process, so pooled, cached, and serial execution agree byte-for-byte
  (:mod:`repro.runner.serialize` round-trips losslessly);
- **visibility** — per-job progress, ETA, and the cache hit/fresh
  summary (:mod:`repro.runner.progress`).

See docs/RUNNER.md for the campaign spec format and cache layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.metrics import RunResult
from repro.runner.cache import (
    ResultCache,
    code_fingerprint,
    default_cache_dir,
    job_fingerprint,
)
from repro.runner.campaign import (
    CampaignSpec,
    Job,
    WorkloadSpec,
    build_config,
    execute_job,
    job_from_dict,
    register_workload,
    registered_workloads,
    stable_seed,
)
from repro.runner.executor import Executor, PoolExecutor
from repro.runner.pool import (
    CampaignJobError,
    default_max_workers,
    default_timeout_s,
    run_jobs,
)
from repro.runner.progress import CampaignProgress, env_echo

__all__ = [
    "CampaignJobError",
    "CampaignProgress",
    "CampaignResult",
    "CampaignSpec",
    "Executor",
    "Job",
    "PoolExecutor",
    "ResultCache",
    "WorkloadSpec",
    "build_config",
    "code_fingerprint",
    "default_cache_dir",
    "default_max_workers",
    "default_timeout_s",
    "env_echo",
    "execute_job",
    "job_fingerprint",
    "job_from_dict",
    "register_workload",
    "registered_workloads",
    "run_campaign",
    "run_jobs",
    "stable_seed",
]


@dataclass
class CampaignResult:
    """A finished campaign: jobs, their results, and the run stats."""

    spec: CampaignSpec
    jobs: list[Job]
    results: list[RunResult]
    progress: CampaignProgress

    def by_key(self) -> dict[Any, RunResult]:
        """Results keyed by each job's ``key``."""
        return {job.key: result for job, result in zip(self.jobs, self.results)}

    def __len__(self) -> int:
        return len(self.jobs)


def run_campaign(
    spec: CampaignSpec,
    *,
    max_workers: int | None = None,
    cache: ResultCache | None = None,
    timeout_s: float | None = None,
    progress: CampaignProgress | None = None,
    executor: Executor | None = None,
) -> CampaignResult:
    """Expand a campaign spec and execute its full job matrix.

    ``executor`` picks the backend (default: the local pool); passing
    both ``executor`` and ``max_workers`` is an error — worker count is
    the pool backend's knob, configured on :class:`PoolExecutor`.
    """
    jobs = spec.expand()
    if progress is None:
        progress = CampaignProgress(len(jobs), echo=env_echo())
    if executor is None:
        executor = PoolExecutor(max_workers=max_workers)
    elif max_workers is not None:
        raise ValueError(
            "run_campaign: pass max_workers or an explicit executor, not both"
        )
    results = executor.run(
        jobs,
        cache=cache,
        timeout_s=timeout_s,
        progress=progress,
    )
    return CampaignResult(spec=spec, jobs=jobs, results=results, progress=progress)
