"""Whole-simulation capture and restore.

The simulation graph — machine (memory, tag and capability-base arrays,
page table, cores, caches, bus), kernel (epoch clock, revoker phase
bookkeeping, hoards), allocator stack (snmalloc heap, mrs quarantine),
scheduler (run queues, sleepers, credits, clocks), workload task state,
latency samples — is one connected object graph rooted at
:class:`~repro.core.simulation.Simulation`, and all of it pickles...
except generator frames. Thread bodies are therefore stripped before
pickling and *fresh* generators are attached on restore; this is sound
because capture only happens at quiescent points where every live app
thread is parked at the snapshot barrier (its loop state lives on the
workload's task object, not the frame) and the mrs controller is blocked
between epochs in ``revoke_requested.waiters`` (all its state on
``self``; a fresh ``controller()`` generator re-blocks identically).

The process-global :data:`~repro.obs.tracer.TRACER` is not part of the
graph; its buffer/metrics travel alongside in the payload and are
reinstalled on restore. A traced checkpoint refuses to restore into an
untraced process (and vice versa) — the alternative is a silently
non-identical ``RunResult``.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any

from repro.errors import SnapshotError
from repro.obs.tracer import TRACER
from repro.snapshot.format import pack_checkpoint, unpack_checkpoint

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.core.simulation import Simulation
    from repro.snapshot.session import SnapshotSink


def capture_simulation(sim: "Simulation") -> tuple[bytes, dict[str, Any]]:
    """Serialize ``sim`` (quiescent, mid-run) into a checkpoint blob.

    Returns ``(blob, header)``. Callers go through
    ``Simulation._capture_and_release`` which establishes quiescence and
    advances the session cadence first.
    """
    session = sim._snapshots
    if session is None:
        raise SnapshotError("capture requires an attached SnapshotSession")

    tracer_state: dict[str, Any] | None = None
    if TRACER.enabled:
        tracer_state = {
            "capacity": TRACER.capacity,
            "metrics": TRACER.metrics,
            "buf": TRACER._buf,
            "head": TRACER._head,
            "emitted": TRACER.emitted,
        }

    sched = sim.machine.scheduler
    stripped = [(t, t.body) for t in sched.threads]
    try:
        for thread, _ in stripped:
            thread.body = None
        payload = pickle.dumps(
            {"sim": sim, "tracer": tracer_state},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    finally:
        for thread, body in stripped:
            thread.body = body

    from repro.runner.serialize import FORMAT_VERSION as RESULT_FORMAT_VERSION
    from repro.snapshot.format import FORMAT_VERSION

    header: dict[str, Any] = {
        "format": "repro-checkpoint",
        "version": FORMAT_VERSION,
        "result_format": RESULT_FORMAT_VERSION,
        "workload": sim.workload.name,
        "revoker": sim.config.revoker.value,
        "epoch": sim.kernel.epoch.completed,
        "wall": sched.current_time(),
        "sequence": session.sequence,
        "traced": tracer_state is not None,
    }
    header.update(session.header_extra)
    return pack_checkpoint(header, payload), header


def restore_simulation(
    data: bytes, sink: "SnapshotSink | None" = None
) -> tuple["Simulation", dict[str, Any]]:
    """Rebuild a quiescent simulation from a checkpoint blob.

    Returns ``(sim, header)``; continue it with ``sim.resume()``. ``sink``
    re-arms checkpoint file delivery on the restored session (the resumed
    run keeps checkpointing on the original cadence).
    """
    header, payload = unpack_checkpoint(data)
    if header.get("format") != "repro-checkpoint":
        raise SnapshotError(f"unexpected checkpoint format field: {header.get('format')!r}")
    try:
        state = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(f"checkpoint payload failed to unpickle: {exc}") from exc

    sim: "Simulation" = state["sim"]
    tracer_state = state["tracer"]
    sched = sim.machine.scheduler

    if (tracer_state is not None) != TRACER.enabled:
        want = "enabled" if tracer_state is not None else "disabled"
        raise SnapshotError(
            f"checkpoint was recorded with tracing {want}; restore with the "
            f"tracer in the same state or the resumed RunResult cannot be "
            f"bit-identical"
        )
    if tracer_state is not None:
        TRACER.capacity = tracer_state["capacity"]
        TRACER.metrics = tracer_state["metrics"]
        TRACER._buf = tracer_state["buf"]
        TRACER._head = tracer_state["head"]
        TRACER.emitted = tracer_state["emitted"]
        TRACER.clock = sched.current_time

    # Reattach fresh generators to the pickled Thread shells.
    bodies = sim.workload.thread_bodies()
    if len(bodies) != len(sim._app_threads):
        raise SnapshotError(
            f"workload now reports {len(bodies)} threads, checkpoint has "
            f"{len(sim._app_threads)}"
        )
    for (name, factory), thread, ctx in zip(bodies, sim._app_threads, sim._contexts):
        thread.body = factory(ctx)
    if sim._controller_thread is not None:
        rc = sim.config.revoker_core
        sim._controller_thread.body = sim.mrs.controller(
            sim.machine.cores[rc], sched.cores[rc]
        )

    session = sim._snapshots
    if session is None:
        raise SnapshotError("checkpoint is missing its snapshot session")
    session.attach_sink(sink)
    sim._restored = True
    return sim, header
