"""Deterministic checkpoint/restore for resumable simulations.

See docs/SNAPSHOT.md. The public surface:

- :class:`SnapshotPlan` / :class:`SnapshotSession` — cadence and delivery
  (pass a plan or session to ``Simulation.run(snapshots=...)``).
- :func:`restore_simulation` — checkpoint blob -> quiescent simulation;
  continue with ``sim.resume()``.
- :func:`read_header` — provenance without unpickling.

The determinism contract: ``restore_simulation(blob)[0].resume()``
produces a ``RunResult`` bit-identical to the straight-through run that
wrote ``blob``, for every revoker, traced or not.
"""

from repro.snapshot.capture import capture_simulation, restore_simulation
from repro.snapshot.format import (
    FORMAT_VERSION,
    pack_checkpoint,
    read_header,
    unpack_checkpoint,
)
from repro.snapshot.session import SnapshotPlan, SnapshotSession, SnapshotSink

__all__ = [
    "FORMAT_VERSION",
    "SnapshotPlan",
    "SnapshotSession",
    "SnapshotSink",
    "capture_simulation",
    "restore_simulation",
    "read_header",
    "pack_checkpoint",
    "unpack_checkpoint",
]
