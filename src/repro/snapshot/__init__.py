"""Deterministic checkpoint/restore for resumable simulations.

See docs/SNAPSHOT.md. The public surface:

- :class:`SnapshotPlan` / :class:`SnapshotSession` — cadence and delivery
  (pass a plan or session to ``Simulation.run(snapshots=...)``).
- :func:`restore_simulation` — checkpoint blob -> quiescent simulation;
  continue with ``sim.resume()``.
- :func:`read_header` — provenance without unpickling.
- :class:`PrefixStore` / :func:`prefix_key` / :func:`fork_simulation` —
  warm-start prefix sharing for sweeps (docs/WARMSTART.md).

The determinism contract: ``restore_simulation(blob)[0].resume()``
produces a ``RunResult`` bit-identical to the straight-through run that
wrote ``blob``, for every revoker, traced or not. Warm-start forking
extends it across revokers at divergence epoch 0: ``fork_simulation``
retargets an epoch-0 prefix to any revoking strategy and the resumed
result stays bit-identical to that strategy's cold run.
"""

from repro.snapshot.capture import capture_simulation, restore_simulation
from repro.snapshot.format import (
    FORMAT_VERSION,
    pack_checkpoint,
    read_header,
    unpack_checkpoint,
)
from repro.snapshot.prefix import (
    PREFIX_FRACTION,
    PrefixStore,
    default_prefix_dir,
    fork_simulation,
    prefix_divergence_epoch,
    prefix_key,
    prefix_plan,
    prefix_store_dir,
    retarget_revoker,
)
from repro.snapshot.session import SnapshotPlan, SnapshotSession, SnapshotSink

__all__ = [
    "FORMAT_VERSION",
    "PREFIX_FRACTION",
    "PrefixStore",
    "SnapshotPlan",
    "SnapshotSession",
    "SnapshotSink",
    "capture_simulation",
    "default_prefix_dir",
    "fork_simulation",
    "prefix_divergence_epoch",
    "prefix_key",
    "prefix_plan",
    "prefix_store_dir",
    "restore_simulation",
    "retarget_revoker",
    "read_header",
    "pack_checkpoint",
    "unpack_checkpoint",
]
