"""The checkpoint container format.

A checkpoint is a single self-describing blob::

    magic "RPRSNAP\\x00" | u16 version | u32 header_len |
    canonical-JSON header | zlib-compressed pickle payload |
    sha256(everything before it)

The header is uncompressed JSON so ``snapshot inspect`` (and the runner's
fingerprint check) can read provenance — workload, revoker, epoch,
sequence number, job fingerprint — without unpickling anything. The
payload is the pickled simulation graph; zlib matters because the tag and
capability-base arrays span the whole simulated physical memory and are
mostly zeros. The trailing digest makes truncation and corruption loud:
a resumed run must either continue bit-identically or refuse, never limp.

Checkpoint *files* are not the determinism contract — pickling hash-seeded
containers from two processes can yield different bytes for equal state.
The contract (docs/SNAPSHOT.md) is on the resumed run's ``RunResult``.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from typing import Any

from repro.errors import SnapshotError

MAGIC = b"RPRSNAP\x00"
#: Bump on any incompatible container or payload change.
FORMAT_VERSION = 1

_FIXED = struct.Struct(">HI")  # version, header length
_DIGEST_LEN = hashlib.sha256().digest_size


def _canonical(header: dict[str, Any]) -> bytes:
    return json.dumps(
        header, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def pack_checkpoint(header: dict[str, Any], payload: bytes) -> bytes:
    """Assemble a checkpoint blob from a JSON-able header and a pickled
    payload (compressed here)."""
    hjson = _canonical(header)
    body = b"".join((
        MAGIC,
        _FIXED.pack(FORMAT_VERSION, len(hjson)),
        hjson,
        zlib.compress(payload, 6),
    ))
    return body + hashlib.sha256(body).digest()


def _split(data: bytes) -> tuple[dict[str, Any], bytes]:
    """Validate framing and checksum; return (header, compressed payload)."""
    floor = len(MAGIC) + _FIXED.size + _DIGEST_LEN
    if len(data) < floor:
        raise SnapshotError(f"checkpoint truncated ({len(data)} bytes)")
    if data[: len(MAGIC)] != MAGIC:
        raise SnapshotError("not a repro checkpoint (bad magic)")
    body, digest = data[:-_DIGEST_LEN], data[-_DIGEST_LEN:]
    if hashlib.sha256(body).digest() != digest:
        raise SnapshotError("checkpoint checksum mismatch (corrupt file)")
    version, hlen = _FIXED.unpack_from(data, len(MAGIC))
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"checkpoint format v{version} unsupported (expected v{FORMAT_VERSION})"
        )
    hstart = len(MAGIC) + _FIXED.size
    if hstart + hlen > len(body):
        raise SnapshotError("checkpoint header overruns payload")
    try:
        header = json.loads(data[hstart : hstart + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"checkpoint header is not valid JSON: {exc}") from exc
    return header, body[hstart + hlen :]


def read_header(data: bytes) -> dict[str, Any]:
    """The checkpoint's provenance header, without touching the payload."""
    header, _ = _split(data)
    return header


def unpack_checkpoint(data: bytes) -> tuple[dict[str, Any], bytes]:
    """Return (header, decompressed pickle payload)."""
    header, compressed = _split(data)
    try:
        return header, zlib.decompress(compressed)
    except zlib.error as exc:
        raise SnapshotError(f"checkpoint payload corrupt: {exc}") from exc
