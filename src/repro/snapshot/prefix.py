"""Warm-start prefix store: shared simulation prefixes for sweeps.

The paper's evaluation is a sweep — the same workload under four
revocation strategies — and PR 4's cross-strategy differential check
proved the logical traces are identical across revokers until the first
revocation epoch opens. That shared warmup is pure recomputation, so
campaigns capture it **once** per (workload, config) group and fork every
sibling job from the checkpoint instead of cold-simulating it: the
simulator-world analogue of prefix/KV caching in an inference stack.

A prefix is a content-addressed checkpoint keyed by everything that
determines the simulation *up to the divergence epoch*:

- the workload spec (builder kind + every parameter, seed included);
- the declarative config overrides (machine shape, quarantine policy);
- the divergence epoch, and at epochs >= 1 the revoker (post-epoch state
  is strategy-specific: cache contents, epoch records, fault counters);
- the simulation code fingerprint (:func:`repro.runner.cache
  .code_fingerprint`) and the checkpoint/result format versions;
- whether the run is traced (tracer state travels inside checkpoints and
  restore refuses a mismatch).

At divergence epoch 0 the key deliberately omits the revoker: revoker
construction has no machine side effects, and no strategy-specific cost
can occur before the first epoch (a load-generation fault needs a
generation flip), so one epoch-0 blob serves **all four** revoking
strategies. :func:`fork_simulation` restores the blob and — when the
target strategy differs from the captured one — swaps in a fresh revoker
of the target class before resuming (:func:`retarget_revoker`). The NONE
baseline runs a different allocator shim and is never warm-started.

Storage mirrors :class:`repro.runner.cache.ResultCache`: one file per
prefix under ``<root>/objects/<aa>/<key>.ckpt``, written through a
same-directory temp file. :meth:`PrefixStore.put_if_absent` links the
temp file in with ``os.link`` so concurrent jobs sharing a prefix can
never double-capture — the first writer wins, everyone else keeps the
existing blob.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import settings
from repro.core.config import RevokerKind
from repro.errors import SnapshotError
from repro.snapshot.capture import restore_simulation
from repro.snapshot.session import SnapshotPlan

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.core.simulation import Simulation
    from repro.runner.campaign import Job

#: Capture the epoch-0 prefix once quarantine exceeds this fraction of
#: the revocation-trigger limit — late enough that the shared prefix
#: covers most of the warmup, early enough that a poll still lands
#: before the trigger fires.
PREFIX_FRACTION = 0.85


def default_prefix_dir() -> Path:
    """``$REPRO_PREFIX_DIR``, else ``~/.cache/repro/prefixes``."""
    env = settings.prefix_dir()
    if env is not None:
        return env
    return Path.home() / ".cache" / "repro" / "prefixes"


def prefix_store_dir() -> Path | None:
    """Where warm-start prefixes live (``$REPRO_PREFIX_DIR``), or None
    when warm-starting is off. Inherited by pool and serve workers, the
    same way trace/snapshot artifact dirs are."""
    return settings.prefix_dir()


def prefix_divergence_epoch() -> int:
    """The divergence epoch for runner-managed prefixes
    (``$REPRO_PREFIX_EPOCH``, default 0 — the cross-revoker point)."""
    return settings.prefix_epoch()


def prefix_key(
    job: "Job", divergence_epoch: int = 0, code_version: str | None = None
) -> str:
    """The content address of one job's warm-start prefix.

    Jobs that differ only in revoker share a key at divergence epoch 0;
    at later epochs the revoker is part of the key (the prefix itself is
    strategy-specific past the first epoch).
    """
    from repro.runner.cache import code_fingerprint
    from repro.runner.serialize import (
        FORMAT_VERSION as RESULT_FORMAT_VERSION,
        canonical_json,
    )
    from repro.snapshot.format import FORMAT_VERSION

    if job.revoker is RevokerKind.NONE:
        raise SnapshotError(
            "the none revoker runs a different allocator shim and has no "
            "shared prefix with the revoking strategies"
        )
    if divergence_epoch < 0:
        raise SnapshotError(
            f"divergence epoch must be >= 0, got {divergence_epoch}"
        )
    material = {
        "kind": "warm-start-prefix",
        "workload": job.workload.to_dict(),
        "config": dict(job.config),
        "epoch": divergence_epoch,
        "family": "mrs" if divergence_epoch == 0 else job.revoker.value,
        "code": code_version if code_version is not None else code_fingerprint(),
        "snapshot_format": FORMAT_VERSION,
        "result_format": RESULT_FORMAT_VERSION,
        "traced": settings.trace_dir() is not None,
    }
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()


def prefix_plan(
    divergence_epoch: int = 0, fraction: float = PREFIX_FRACTION
) -> SnapshotPlan:
    """The capture cadence for one prefix: the staged epoch-0 ladder
    (the run buffers every rung and keeps the deepest; see
    ``SnapshotPlan.prefix_fraction``), or a single checkpoint at the
    divergence epoch's close for epochs >= 1."""
    if divergence_epoch == 0:
        return SnapshotPlan(prefix_fraction=fraction)
    return SnapshotPlan(every_epochs=divergence_epoch, max_captures=1)


def retarget_revoker(sim: "Simulation", kind: RevokerKind) -> None:
    """Swap a restored simulation's revocation strategy for ``kind``.

    Only sound at divergence epoch 0 — before the first epoch a revoker
    instance carries no history (empty records, zero fault counters) and
    no strategy-specific cost has been charged to the machine, so a fresh
    instance of the target class is observationally identical to having
    run under it from the start. The register files the kernel registered
    with the captured revoker are transplanted (the STW root scan must
    keep covering every app thread), and the freshly attached controller
    generator reads ``kernel.revoker`` lazily on its first advance, so no
    other reference needs fixing.
    """
    from repro.core.simulation import _REVOKER_CLASSES

    if kind is RevokerKind.NONE or sim.mrs is None:
        raise SnapshotError(
            "warm-start forking requires a revoking strategy on both sides"
        )
    if sim.config.custom_revoker is not None:
        raise SnapshotError("cannot retarget a custom revoker")
    if sim.config.revoker is kind:
        return
    old = sim.kernel.revoker
    if (
        sim.kernel.epoch.completed != 0
        or sim.mrs._trigger_pending
        or (old is not None and old.records)
    ):
        raise SnapshotError(
            "cross-revoker forking is only sound at divergence epoch 0 "
            "(the checkpoint already contains strategy-specific state)"
        )
    new = _REVOKER_CLASSES[kind](
        sim.kernel.machine,
        sim.kernel.address_space,
        sim.kernel.shadow,
        sim.kernel.epoch,
        sim.kernel.hoards,
    )
    new.register_files = old.register_files if old is not None else []
    sim.kernel.revoker = new
    sim.config.revoker = kind


def fork_simulation(
    data: bytes, kind: RevokerKind
) -> "tuple[Simulation, dict[str, Any]]":
    """Restore a prefix blob and point it at ``kind``; continue with
    ``sim.resume()``. With ``kind`` equal to the captured strategy this
    is a plain restore (valid at any divergence epoch); a different
    revoking strategy additionally requires an epoch-0 prefix."""
    sim, header = restore_simulation(data)
    retarget_revoker(sim, kind)
    return sim, header


class PrefixStore:
    """Content-addressed store of warm-start prefix checkpoints."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_prefix_dir()

    def _path_of(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.ckpt"

    def get(self, key: str) -> bytes | None:
        """The stored prefix blob, or None on miss. Integrity is the
        caller's problem: :func:`repro.snapshot.read_header` and the
        container's trailing digest reject truncated or corrupt blobs,
        and the runner falls back to a cold run on any SnapshotError."""
        try:
            return self._path_of(key).read_bytes()
        except OSError:
            return None

    def put_if_absent(self, key: str, blob: bytes) -> bool:
        """Persist ``blob`` under ``key`` unless a prefix already exists.

        Atomic and first-writer-wins: the blob lands via a same-directory
        temp file hard-linked into place, so two jobs racing to capture
        the same prefix can never tear or double-write it. Returns True
        iff this call stored the blob.
        """
        path = self._path_of(key)
        if path.exists():
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=key[:8], suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            try:
                os.link(tmp, path)
            except FileExistsError:
                return False
            return True
        finally:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - tmp already gone
                pass

    def __contains__(self, key: str) -> bool:
        return self._path_of(key).exists()

    def entries(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.ckpt"))

    def paths(self) -> list[Path]:
        """Every stored prefix blob, sorted for stable listings."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.ckpt"))
