"""Snapshot scheduling: when to park, when to capture.

A :class:`SnapshotSession` is attached to a simulation before ``run()``
and rides *inside* the simulation graph (so a checkpoint knows its own
cadence and a resumed run keeps checkpointing on schedule). Application
threads poll :meth:`due` at the top of their work loop and park on
:attr:`barrier` when a capture is pending; the simulation's drive loop
waits for full quiescence (every app thread parked or finished, the mrs
controller idle between epochs), captures, then signals the barrier with
``at_time=0`` — a pure no-op on every wake floor, so enabling snapshots
does not perturb the schedule.

In-memory captures and the file sink are deliberately *not* pickled:
a checkpoint must not contain earlier checkpoints, and a restored session
only writes files if the restorer re-arms a sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SnapshotError
from repro.machine.scheduler import Event, ThreadState

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.core.simulation import Simulation

#: Sink signature: called with (checkpoint blob, header dict) per capture.
SnapshotSink = Callable[[bytes, dict], Any]

#: Prefix-mode capture ladder, as multipliers of ``prefix_fraction x
#: trigger limit``. Stage 0 captures at the first quiescent poll (so a
#: prefix always exists if the workload polls at all before the first
#: trigger); later stages upgrade it as quarantine approaches the limit.
_PREFIX_STAGES = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class SnapshotPlan:
    """Capture cadence.

    With a revoker installed, captures land at epoch-close boundaries:
    one capture each time ``every_epochs`` further revocation epochs have
    completed. Under the NONE revoker there are no epochs, so the cadence
    falls back to ``every_checks`` barrier polls (one poll per workload
    work unit); leaving it unset under NONE is an error rather than a
    silent never-captures.

    ``prefix_fraction`` switches the session into **epoch-0 prefix
    mode** (docs/WARMSTART.md): capture the deepest quiescent poll before
    the *first* revocation epoch opens. Quarantine can grow by a large
    bite between polls (one work unit may free more than the remaining
    headroom), so a single just-below-the-trigger threshold would often
    be skipped entirely; instead the session captures at a small ladder
    of thresholds — immediately, then again each time quarantine crosses
    the next fraction of ``prefix_fraction x trigger limit`` — and the
    *last* capture (the deepest prefix) is the one worth keeping.
    Everything captured is revoker-independent (no epoch has run yet),
    which is what lets the warm-start fork retarget the blob to a
    different revocation strategy. Once the trigger fires the window has
    closed and the session retires — safe degradation, never a wrong
    capture.
    """

    every_epochs: int = 1
    every_checks: int | None = None
    #: Stop capturing after this many checkpoints (None = unbounded).
    max_captures: int | None = None
    #: Epoch-0 prefix mode: capture once quarantine exceeds this fraction
    #: of the revocation-trigger limit, before the first epoch. Requires
    #: a revoking strategy (the NONE revoker has no quarantine).
    prefix_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.every_epochs < 1:
            raise SnapshotError(f"every_epochs must be >= 1, got {self.every_epochs}")
        if self.every_checks is not None and self.every_checks < 1:
            raise SnapshotError(f"every_checks must be >= 1, got {self.every_checks}")
        if self.max_captures is not None and self.max_captures < 1:
            raise SnapshotError(f"max_captures must be >= 1, got {self.max_captures}")
        if self.prefix_fraction is not None and not (
            0.0 < self.prefix_fraction <= 1.0
        ):
            raise SnapshotError(
                f"prefix_fraction must be in (0, 1], got {self.prefix_fraction}"
            )


class SnapshotSession:
    """Live snapshot state for one simulation run."""

    def __init__(
        self,
        sim: "Simulation",
        plan: SnapshotPlan,
        sink: SnapshotSink | None = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.barrier = Event("snapshot-barrier")
        #: Captures taken so far (straight run and resumed run combined —
        #: a resumed run continues the sequence).
        self.sequence = 0
        self._epoch_mode = sim.mrs is not None
        if not self._epoch_mode and plan.every_checks is None:
            raise SnapshotError(
                "the NONE revoker has no epochs to snapshot at; "
                "set SnapshotPlan.every_checks"
            )
        if plan.prefix_fraction is not None and not self._epoch_mode:
            raise SnapshotError(
                "prefix capture requires a revoking strategy (the NONE "
                "revoker has no quarantine to measure the prefix against)"
            )
        self.next_epoch = plan.every_epochs
        self._checks = 0
        self._prefix_stage = 0
        self._exhausted = False
        #: Extra provenance merged into every checkpoint header (the
        #: runner stamps its job fingerprint here). Pure data; pickled,
        #: so a resumed run keeps stamping the same provenance.
        self.header_extra: dict = {}
        #: Blobs captured this process (value copies; never pickled).
        self.captured: list[bytes] = []
        self.headers: list[dict] = []
        self._sink = sink

    # --- Workload-facing ----------------------------------------------------

    def due(self) -> bool:
        """Should the polling thread park for a capture now? Called once
        per work unit; under check cadence the call itself is the tick.

        In epoch mode this additionally requires the mrs controller to be
        idle-blocked between epochs. That makes the park *free*: with the
        controller parked in ``revoke_requested.waiters`` and the app
        thread blocked at the barrier nothing else is runnable, so the
        capture happens immediately, zero simulated cycles pass, and the
        schedule is not perturbed. Parking while the controller is still
        revoking or releasing quarantine would instead serialize app work
        against the release — different allocator interleaving, different
        run. If the controller is busy at an epoch boundary the capture
        simply waits for the next work-unit poll.
        """
        if self._exhausted:
            return False
        if self._epoch_mode:
            if self.plan.prefix_fraction is not None:
                return self._prefix_due()
            if self.sim.kernel.epoch.completed < self.next_epoch:
                return False
            return self._controller_idle()
        assert self.plan.every_checks is not None
        self._checks += 1
        return self._checks >= self.plan.every_checks

    def _prefix_due(self) -> bool:
        """Epoch-0 prefix mode: walk the capture ladder toward the last
        quiescent poll before the first revocation trigger. Once a
        trigger has fired (or an epoch has completed) the shared-prefix
        window is closed for good, so the session retires instead of
        polling forever."""
        mrs = self.sim.mrs
        if self.sim.kernel.epoch.completed != 0 or mrs._trigger_pending:
            self._exhausted = True
            return False
        quarantined = mrs.quarantine.total_bytes
        limit = mrs.policy.limit_bytes(mrs.alloc.allocated_bytes, quarantined)
        assert self.plan.prefix_fraction is not None
        threshold = (
            _PREFIX_STAGES[self._prefix_stage] * self.plan.prefix_fraction * limit
        )
        if quarantined < threshold:
            return False
        return self._controller_idle()

    def _controller_idle(self) -> bool:
        controller = self.sim._controller_thread
        if controller is None:
            return False
        return (
            controller.state is ThreadState.BLOCKED
            and controller in self.sim.mrs.revoke_requested.waiters
        )

    # --- Simulation-facing --------------------------------------------------

    def mark_captured(self) -> None:
        """Advance the cadence. Runs *before* the state is pickled, so the
        checkpoint and the continuing run agree on when the next capture
        is due — the symmetry the determinism contract rests on."""
        self.sequence += 1
        if self._epoch_mode:
            self.next_epoch = self.sim.kernel.epoch.completed + self.plan.every_epochs
            if self.plan.prefix_fraction is not None:
                self._prefix_stage += 1
                if self._prefix_stage >= len(_PREFIX_STAGES):
                    self._exhausted = True
        else:
            self._checks = 0
        if self.plan.max_captures is not None and self.sequence >= self.plan.max_captures:
            self._exhausted = True

    def deliver(self, blob: bytes, header: dict) -> None:
        self.captured.append(blob)
        self.headers.append(header)
        if self._sink is not None:
            self._sink(blob, header)

    def attach_sink(self, sink: SnapshotSink | None) -> None:
        """Re-arm file delivery on a restored session (sinks are process
        resources and never travel inside a checkpoint)."""
        self._sink = sink

    # --- Pickling -----------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["captured"] = []
        state["headers"] = []
        state["_sink"] = None
        return state
