"""Baseline shim: snmalloc with immediate reuse (no temporal safety).

The paper's baseline condition loads the same snmalloc shim as the test
conditions but without mrs (§5): frees go straight back to the free lists.
Exposes the same generator interface as :class:`repro.alloc.mrs.MrsShim`
so workloads are oblivious to the condition they run under.
"""

from __future__ import annotations

from typing import Generator

from repro.alloc.snmalloc import SnMalloc
from repro.machine.capability import Capability
from repro.machine.cpu import Core
from repro.machine.scheduler import CoreSlot


class BaselineShim:
    """Allocator shim with no quarantine: free means reusable."""

    def __init__(self, alloc: SnMalloc) -> None:
        self.alloc = alloc

    def malloc(self, core: Core, slot: CoreSlot, nbytes: int) -> Generator:
        cap, cycles = self.alloc.malloc(nbytes)
        yield cycles
        return cap

    def free(self, core: Core, slot: CoreSlot, cap: Capability) -> Generator:
        region, cycles = self.alloc.free(cap)
        cycles += self.alloc.release(region)
        yield cycles

    @property
    def quarantine_bytes(self) -> int:
        return 0
