"""User-space allocation stack: snmalloc-like allocator, quarantine
policy, the mrs shim, and the no-safety baseline shim."""

from repro.alloc.baseline import BaselineShim
from repro.alloc.mrs import MrsShim
from repro.alloc.quarantine import Quarantine, QuarantinePolicy, SealedBatch
from repro.alloc.snmalloc import (
    CHUNK_BYTES,
    LARGE_THRESHOLD,
    SIZE_CLASSES,
    FreedRegion,
    SnMalloc,
    size_class_of,
)

__all__ = [
    "BaselineShim",
    "CHUNK_BYTES",
    "FreedRegion",
    "LARGE_THRESHOLD",
    "MrsShim",
    "Quarantine",
    "QuarantinePolicy",
    "SIZE_CLASSES",
    "SealedBatch",
    "SnMalloc",
    "size_class_of",
]
