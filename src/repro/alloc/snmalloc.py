"""A size-class slab allocator in the style of snmalloc [33].

The paper's user-space heap is snmalloc, LD_PRELOAD-ed under every
condition (baseline included), with the mrs shim layered on top for the
temporal-safety conditions. This model reproduces the properties the
evaluation depends on:

- allocations are **bounded capabilities** derived from the chunk's root
  capability (spatial safety; §2.1);
- all sizes are rounded to 16-byte granules so revocation-bitmap painting
  is exact;
- address space is requested from the kernel in chunks and **never
  returned** (§6.2), so quarantined memory keeps pages resident — the
  fig. 3 RSS effect;
- freed memory is not poisoned; its contents (and any stale capabilities
  in it) survive untouched until *reuse*, at which point the region is
  zeroed (§2.2.2: deferral of zeroing to reuse).

Double frees and frees of non-heap pointers raise
:class:`~repro.errors.AllocatorError` deterministically.
"""

from __future__ import annotations

import bisect

from dataclasses import dataclass

from repro.errors import AllocatorError
from repro.kernel.kernel import Kernel
from repro.machine.capability import Capability, Perm
from repro.machine.costs import GRANULE_BYTES, PAGE_BYTES

#: Chunk size requested from the kernel when a size class runs dry.
CHUNK_BYTES = 16 * PAGE_BYTES

#: Allocations above this go to their own page-multiple chunk.
LARGE_THRESHOLD = CHUNK_BYTES // 2

#: Small size classes, in bytes (granule multiples, snmalloc-style
#: pow2 + half-steps spacing).
SIZE_CLASSES: tuple[int, ...] = (
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768,
    1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 24576, 32768,
)


def size_class_of(nbytes: int) -> int:
    """Smallest size class holding ``nbytes``; -1 for large allocations."""
    if nbytes > LARGE_THRESHOLD:
        return -1
    for i, sc in enumerate(SIZE_CLASSES):
        if nbytes <= sc:
            return i
    return -1


@dataclass(frozen=True)
class FreedRegion:
    """A freed allocation: what quarantine tracks out-of-band (§6.3's
    contrast — Cornucopia-era shims must keep quarantine metadata outside
    the freed memory, since clients may still read it)."""

    addr: int
    size: int  # rounded (granule-multiple) size actually reserved
    size_class: int  # -1 for large


class SnMalloc:
    """The allocator. ``malloc``/``free`` return cycle costs alongside
    their results; the shim layers (baseline or mrs) own reuse policy via
    :meth:`release`."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.costs = kernel.machine.costs
        #: Free lists per size class (addresses).
        self._free_lists: list[list[int]] = [[] for _ in SIZE_CLASSES]
        #: Bump state per size class: (next_addr, end_addr) of current slab.
        self._slabs: list[tuple[int, int]] = [(0, 0) for _ in SIZE_CLASSES]
        #: Free lists for large (own-chunk) allocations, by rounded size.
        self._large_free: dict[int, list[int]] = {}
        #: Live allocation metadata: base address -> rounded size, class.
        self._live: dict[int, tuple[int, int]] = {}
        #: Chunk root capabilities, sorted by base (bump allocation).
        self._chunks: list[Capability] = []
        self._chunk_bases: list[int] = []
        self.allocated_bytes = 0
        self.total_allocated_bytes = 0  # lifetime sum (table 2's "Sum Freed" input)
        self.total_freed_bytes = 0
        self.malloc_calls = 0
        self.free_calls = 0
        #: Opt-in address trace (:mod:`repro.check`'s differential oracle
        #: compares placement across strategies). ``None`` — the default —
        #: costs one attribute test per malloc.
        self.trace_addresses: list[int] | None = None

    # --- Internals -----------------------------------------------------------

    def _chunk_for(self, addr: int, size: int) -> Capability:
        """The chunk capability covering ``[addr, addr+size)``.

        Chunks are handed out by a bump allocator, so ``self._chunks`` is
        sorted by base address and bisection finds the owner.
        """
        i = bisect.bisect_right(self._chunk_bases, addr) - 1
        if i >= 0:
            chunk = self._chunks[i]
            if chunk.base <= addr and addr + size <= chunk.top:
                return chunk
        raise AllocatorError(f"address {addr:#x} not within any heap chunk")

    def _grow(self, size_class: int) -> int:
        """Map a fresh chunk for a size class; returns cycles."""
        cap, _ = self.kernel.address_space.mmap(CHUNK_BYTES)
        self._chunks.append(cap)
        self._chunk_bases.append(cap.base)
        self._slabs[size_class] = (cap.base, cap.top)
        return self.costs.malloc_slow_extra

    def _round(self, nbytes: int) -> int:
        return max(
            GRANULE_BYTES,
            (nbytes + GRANULE_BYTES - 1) & ~(GRANULE_BYTES - 1),
        )

    # --- Public allocator surface ------------------------------------------------

    def malloc(self, nbytes: int) -> tuple[Capability, int]:
        """Allocate ``nbytes``; returns (bounded capability, cycles)."""
        if nbytes <= 0:
            raise AllocatorError(f"malloc of non-positive size {nbytes}")
        self.malloc_calls += 1
        cycles = self.costs.malloc_fast
        sc = size_class_of(nbytes)
        if sc == -1:
            rounded = self._round(nbytes)
            free_list = self._large_free.get(rounded)
            if free_list:
                addr = free_list.pop()
                self.kernel.machine.memory.store_data(addr, rounded)
                cycles += rounded // GRANULE_BYTES
            else:
                cap, _ = self.kernel.address_space.mmap(rounded)
                self._chunks.append(cap)
                self._chunk_bases.append(cap.base)
                addr = cap.base
                cycles += self.costs.malloc_slow_extra
            user = self._chunk_for(addr, rounded).derive(addr, rounded, Perm.all())
        else:
            rounded = SIZE_CLASSES[sc]
            free_list = self._free_lists[sc]
            if free_list:
                addr = free_list.pop()
                # Deferred zeroing at reuse (§2.2.2 fn. 7): stale contents
                # and tags die now, not at free.
                self.kernel.machine.memory.store_data(addr, rounded)
                cycles += rounded // GRANULE_BYTES  # zeroing, ~1 cycle/granule
            else:
                next_addr, end = self._slabs[sc]
                if next_addr + rounded > end:
                    cycles += self._grow(sc)
                    next_addr, end = self._slabs[sc]
                addr = next_addr
                self._slabs[sc] = (next_addr + rounded, end)
            user = self._chunk_for(addr, rounded).derive(addr, rounded, Perm.all())
        self._live[addr] = (rounded, sc)
        self.allocated_bytes += rounded
        self.total_allocated_bytes += rounded
        if self.trace_addresses is not None:
            self.trace_addresses.append(addr)
        return user, cycles

    def free(self, cap: Capability) -> tuple[FreedRegion, int]:
        """Tear down the allocation ``cap`` points to; returns the freed
        region and cycles. The region is *not* reusable until the owning
        shim calls :meth:`release` (quarantine lives between the two)."""
        meta = self._live.pop(cap.base, None)
        if meta is None:
            raise AllocatorError(
                f"free of {cap.base:#x}: not a live allocation (double free "
                f"or foreign pointer)"
            )
        rounded, sc = meta
        self.allocated_bytes -= rounded
        self.total_freed_bytes += rounded
        self.free_calls += 1
        return FreedRegion(cap.base, rounded, sc), self.costs.free_fast

    def release(self, region: FreedRegion) -> int:
        """Return a freed (and, under mrs, revoked) region to the free
        lists; returns cycles."""
        if region.size_class >= 0:
            self._free_lists[region.size_class].append(region.addr)
        else:
            # Large regions' chunks stay mapped (address space is never
            # returned, §6.2) and are recycled by exact size.
            self._large_free.setdefault(region.size, []).append(region.addr)
        return self.costs.free_fast

    # --- Introspection -----------------------------------------------------------

    def is_live(self, addr: int) -> bool:
        return addr in self._live

    @property
    def live_allocations(self) -> int:
        return len(self._live)
