"""The mrs shim [25]: quarantine management between malloc and the revoker.

mrs interposes on the allocator exactly as the paper's LD_PRELOAD shim
does (§5): ``free`` paints the revocation bitmap and quarantines the
region instead of releasing it; ``malloc`` applies the revocation-trigger
policy and, when quarantine runs far over budget during an in-flight
revocation, *blocks* the mutator (the §5.3 back-pressure behind gRPC's
99.9th-percentile tails).

A dedicated controller thread — the paper's per-process revocation thread,
pinned to its own core for SPEC/pgbench and contending with the server for
gRPC — waits for triggers, runs the installed revoker's epoch via the
revocation syscall, and afterwards releases (unpaints and returns) every
quarantine batch whose release epoch has arrived.

All mutator-facing entry points are generators (they charge simulated
cycles and may block); see :mod:`repro.machine.scheduler` for the
convention.
"""

from __future__ import annotations

from typing import Generator

from repro.alloc.quarantine import Quarantine, QuarantinePolicy
from repro.alloc.snmalloc import SnMalloc
from repro.errors import SimulationError
from repro.kernel.kernel import Kernel
from repro.machine.capability import Capability
from repro.machine.costs import GRANULE_BYTES
from repro.machine.cpu import Core
from repro.machine.scheduler import Block, CoreSlot, Event


class MrsShim:
    """Quarantine + revocation-policy shim over :class:`SnMalloc`."""

    def __init__(
        self,
        alloc: SnMalloc,
        kernel: Kernel,
        policy: QuarantinePolicy | None = None,
    ) -> None:
        self.alloc = alloc
        self.kernel = kernel
        self.costs = kernel.machine.costs
        self.policy = policy if policy is not None else QuarantinePolicy()
        self.quarantine = Quarantine()
        #: Pokes the controller when the trigger policy fires.
        self.revoke_requested = Event("mrs-revoke-requested")
        #: Broadcast after quarantine batches are released (unblocks
        #: back-pressured mutators).
        self.released = Event("mrs-released")
        self._trigger_pending = False
        self.revocations_triggered = 0
        self.blocked_operations = 0
        #: Allocated-heap sizes sampled at each trigger (table 2's
        #: "Mean Alloc" column).
        self.sampled_alloc_bytes: list[int] = []

    # --- Policy ------------------------------------------------------------------

    def _maybe_trigger(self, slot_time: int) -> None:
        if self._trigger_pending:
            return
        if self.policy.should_trigger(self.alloc.allocated_bytes, self.quarantine.total_bytes):
            self._trigger_pending = True
            self.revocations_triggered += 1
            self.sampled_alloc_bytes.append(self.alloc.allocated_bytes)
            self.quarantine.sampled_bytes.append(self.quarantine.total_bytes)
            self.kernel.machine.scheduler.signal(self.revoke_requested, at_time=slot_time)

    def _back_pressure(self, slot: CoreSlot) -> Generator:
        """Block the mutator while quarantine is more than twice over
        budget with a revocation in flight (§5.3)."""
        blocked = False
        while (
            self.quarantine.sealed
            and self.policy.should_block(
                self.alloc.allocated_bytes, self.quarantine.total_bytes
            )
        ):
            if not blocked:
                blocked = True
                self.blocked_operations += 1
            yield Block(self.released)

    # --- Shadow bitmap traffic ---------------------------------------------------------

    def _paint(self, core: Core, addr: int, nbytes: int) -> int:
        """Paint a freed region; returns cycles (compute + shadow traffic)."""
        granules = self.kernel.shadow.paint(addr, nbytes)
        shadow_addr, shadow_len = self.kernel.shadow.shadow_span(addr, nbytes)
        misses = core.cache.access_range(shadow_addr, shadow_len, write=True)
        return (
            granules * self.costs.paint_per_granule
            + misses * self.costs.mem_miss
            + self.costs.quarantine_bookkeeping
        )

    def _unpaint(self, core: Core, addr: int, nbytes: int) -> int:
        self.kernel.shadow.unpaint(addr, nbytes)
        shadow_addr, shadow_len = self.kernel.shadow.shadow_span(addr, nbytes)
        misses = core.cache.access_range(shadow_addr, shadow_len, write=True)
        return (
            (nbytes // GRANULE_BYTES) * self.costs.paint_per_granule
            + misses * self.costs.mem_miss
        )

    # --- Mutator surface ------------------------------------------------------------------

    def malloc(self, core: Core, slot: CoreSlot, nbytes: int) -> Generator:
        """Allocate; a generator yielding cycle costs, returning the
        bounded capability."""
        yield from self._back_pressure(slot)
        cap, cycles = self.alloc.malloc(nbytes)
        yield cycles
        self._maybe_trigger(slot.time)
        return cap

    def free(self, core: Core, slot: CoreSlot, cap: Capability) -> Generator:
        """Free: paint, quarantine, maybe trigger revocation."""
        yield from self._back_pressure(slot)
        region, cycles = self.alloc.free(cap)
        yield cycles + self._paint(core, region.addr, region.size)
        self.quarantine.add(region)
        self._maybe_trigger(slot.time)

    # --- The controller thread ----------------------------------------------------------------

    def controller(self, core: Core, slot: CoreSlot) -> Generator:
        """Daemon body: run revocations on demand and release quarantine.

        Spawn with ``stops_for_stw=False`` — this thread *is* the one
        driving the stop-the-world.
        """
        revoker = self.kernel.revoker
        if revoker is None:
            raise SimulationError("mrs controller started with no revoker installed")
        while True:
            while not self._trigger_pending:
                yield Block(self.revoke_requested)
            # Seal the pending buffer: every paint in it has completed, and
            # the epoch it observes decides its release point (§2.2.3).
            self.quarantine.seal(self.kernel.epoch.read())
            self._trigger_pending = False
            yield from revoker.revoke(core, slot)
            yield from self._release_ready(core, slot)

    def _release_ready(self, core: Core, slot: CoreSlot) -> Generator:
        counter = self.kernel.epoch.read()
        ready = self.quarantine.releasable(counter)
        for batch in ready:
            for region in batch.regions:
                yield self._unpaint(core, region.addr, region.size)
                yield self.alloc.release(region)
        if ready:
            self.kernel.machine.scheduler.signal(self.released, at_time=slot.time)

    # --- Reporting ---------------------------------------------------------------------------------

    @property
    def quarantine_bytes(self) -> int:
        return self.quarantine.total_bytes
