"""Quarantine buffers and revocation-trigger policy (§2.2.2, §5, §7.2).

Freed address space lingers in quarantine between ``free()`` and reuse.
mrs double-buffers its quarantine (§7.2): one *sealed* batch rides through
a revocation epoch while new frees accumulate in the *pending* buffer.
A sealed batch records the epoch counter it observed after its last paint;
it may be released (unpainted and returned to the allocator's free lists)
once the counter reaches :func:`repro.kernel.epoch.release_epoch_for` of
that observation — the paper's two-or-three increment rule (§2.2.3).

The trigger policy is the paper's (§5): revoke when quarantine exceeds a
quarter of the *total* heap (allocated + quarantined; equivalently a third
of allocated), but never for less than 8 MiB of quarantine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.alloc.snmalloc import FreedRegion
from repro.kernel.epoch import release_epoch_for
from repro.obs.tracer import TRACER


@dataclass(frozen=True)
class QuarantinePolicy:
    """When to trigger revocation, and when to push back on the mutator."""

    #: Trigger revocation when quarantine exceeds this fraction of the
    #: total heap (allocated + quarantined). The paper's 1/4.
    heap_fraction: float = 0.25
    #: ...but never below this many quarantined bytes (mrs default 8 MiB).
    min_bytes: int = 8 << 20
    #: Block mutator malloc/free when quarantine exceeds this multiple of
    #: the trigger limit while a revocation is already in flight (§5.3).
    block_multiplier: float = 2.0

    def limit_bytes(self, allocated_bytes: int, quarantined_bytes: int) -> int:
        """Quarantine size beyond which revocation should run."""
        total = allocated_bytes + quarantined_bytes
        return max(self.min_bytes, int(total * self.heap_fraction))

    def should_trigger(self, allocated_bytes: int, quarantined_bytes: int) -> bool:
        return quarantined_bytes > self.limit_bytes(allocated_bytes, quarantined_bytes)

    def should_block(self, allocated_bytes: int, quarantined_bytes: int) -> bool:
        limit = self.limit_bytes(allocated_bytes, quarantined_bytes)
        return quarantined_bytes > limit * self.block_multiplier


@dataclass
class SealedBatch:
    """A quarantine buffer riding through revocation."""

    regions: list[FreedRegion]
    bytes: int
    #: Epoch counter observed at seal time (after every paint in the batch).
    observed_epoch: int

    @property
    def release_at(self) -> int:
        return release_epoch_for(self.observed_epoch)


class Quarantine:
    """Double-buffered quarantine: a pending buffer plus sealed batches."""

    def __init__(self) -> None:
        self.pending: list[FreedRegion] = []
        self.pending_bytes = 0
        self.sealed: list[SealedBatch] = []
        #: Lifetime total of bytes that entered quarantine (table 2's
        #: "Sum Freed" column).
        self.lifetime_bytes = 0
        self.peak_bytes = 0
        #: Sum of quarantine size sampled at each revocation (for mean
        #: quarantine reporting, §5.2).
        self.sampled_bytes: list[int] = []
        #: Oracle probe points (:mod:`repro.check`): ``on_seal(batch)``
        #: after a pending buffer is sealed; ``on_release(batch, counter)``
        #: for each batch popped by :meth:`releasable`, *before* the caller
        #: unpaints or reuses its regions. Both default to ``None``.
        self.on_seal: Callable[[SealedBatch], None] | None = None
        self.on_release: Callable[[SealedBatch, int], None] | None = None

    @property
    def sealed_bytes(self) -> int:
        return sum(b.bytes for b in self.sealed)

    @property
    def total_bytes(self) -> int:
        return self.pending_bytes + self.sealed_bytes

    def add(self, region: FreedRegion) -> None:
        self.pending.append(region)
        self.pending_bytes += region.size
        self.lifetime_bytes += region.size
        self.peak_bytes = max(self.peak_bytes, self.total_bytes)
        if TRACER.enabled:
            TRACER.emit(
                "quarantine.fill", bytes=region.size, total=self.total_bytes
            )

    def seal(self, observed_epoch: int) -> SealedBatch:
        """Seal the pending buffer into a batch awaiting revocation."""
        batch = SealedBatch(self.pending, self.pending_bytes, observed_epoch)
        self.pending = []
        self.pending_bytes = 0
        self.sealed.append(batch)
        if self.on_seal is not None:
            self.on_seal(batch)
        if TRACER.enabled:
            TRACER.emit(
                "quarantine.seal", bytes=batch.bytes, epoch=observed_epoch
            )
        return batch

    def releasable(self, epoch_counter: int) -> list[SealedBatch]:
        """Pop and return every sealed batch whose release epoch has come."""
        ready = [b for b in self.sealed if epoch_counter >= b.release_at]
        self.sealed = [b for b in self.sealed if epoch_counter < b.release_at]
        if self.on_release is not None:
            for batch in ready:
                self.on_release(batch, epoch_counter)
        if TRACER.enabled and ready:
            TRACER.emit(
                "quarantine.drain",
                batches=len(ready),
                bytes=sum(b.bytes for b in ready),
                epoch=epoch_counter,
            )
        return ready
