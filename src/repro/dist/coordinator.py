"""The multi-node campaign coordinator.

One :class:`DistributedExecutor` drives a campaign batch across N
``repro.serve`` daemons over the normal NDJSON wire protocol (Unix or
TCP sockets — docs/SERVING.md). It is a drop-in campaign backend (the
:class:`~repro.runner.executor.Executor` protocol): results come back
bit-identical to a local run, aligned with the job list, written into
the same local result cache.

How a batch flows (docs/DIST.md has the full topology discussion):

1. **Local cache first.** Jobs whose fingerprint is already in the
   local cache never touch the network; duplicate fingerprints within
   the batch collapse to one dispatch (the ``run_jobs`` dedup contract).
2. **Consistent-hash routing.** Every remaining job routes by its
   content fingerprint through a :class:`~repro.dist.ring.HashRing`, so
   reruns land on the same nodes and each node's result cache and
   warm-start prefix store stay hot for *its* shard of the keyspace.
3. **Per-node dispatchers.** One dispatcher thread per live node drains
   that node's queue through a blocking :class:`ServeClient`; overload
   rejections honor the server's ``retry_after_s`` hint.
4. **Failover.** A node that stops answering (connection refused/reset,
   response timeout, draining) is marked dead and removed from the
   ring; its queued jobs rehash to the survivors and its in-flight job
   is re-dispatched with its attempt count bumped. A job that fails
   ``max_attempts`` times — or finds no live node — becomes a terminal
   failure: recorded, counted by ``progress.job_failed``, and raised as
   :class:`CampaignJobError` only after every other job settles. A
   *deterministic* job error (the daemon's ``job-failed`` /
   ``invalid-job`` codes) is terminal immediately — the simulation is
   deterministic, so a retry would fail identically.
5. **Rejoin.** A monitor thread keeps pinging dead nodes; one that
   answers again is re-absorbed into the ring and its dispatcher
   restarted, so a bounced daemon picks work back up mid-campaign.
6. **Warm-start lifting.** With ``warm_start=True`` the prefix-gate
   leader election from the local pool (docs/WARMSTART.md) runs at the
   coordinator: one job per prefix group dispatches first, and once it
   settles the coordinator pulls the captured prefix off its node
   (``prefix-fetch``) and pushes it to every other live node
   (``prefix-put``) before releasing the group — exactly one node pays
   the warmup, every node serves the group warm.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.metrics import RunResult
from repro.errors import DistError
from repro.obs.metrics import MetricsRegistry
from repro.runner.cache import ResultCache, job_fingerprint
from repro.runner.campaign import Job, prefix_eligible
from repro.runner.pool import CampaignJobError
from repro.runner.progress import CampaignProgress, env_echo
from repro.runner.serialize import result_from_dict
from repro.serve.client import (
    Overloaded,
    RequestFailed,
    ServeClient,
    ServeError,
    ServeTimeout,
    ServerUnavailable,
)
from repro.serve.protocol import E_INVALID_JOB, E_JOB_FAILED

#: Error codes that are properties of the *job*, not the node: the
#: simulation is deterministic, so re-dispatching elsewhere would fail
#: identically. Terminal on first sight.
_DETERMINISTIC_CODES = (E_JOB_FAILED, E_INVALID_JOB)

#: Queue sentinel that makes a dispatcher thread exit.
_STOP = object()


@dataclass(frozen=True)
class NodeSpec:
    """One daemon endpoint: a unix socket path or a host:port."""

    name: str
    socket_path: str | None = None
    host: str | None = None
    port: int | None = None

    @classmethod
    def parse(cls, token: str) -> "NodeSpec":
        """Parse one ``--nodes`` entry.

        Anything with a ``/`` (or a ``.sock`` suffix) is a unix socket
        path; otherwise ``host:port``. A bare hostname is an error —
        there is no default port.
        """
        token = token.strip()
        if not token:
            raise DistError("empty node entry in the node list")
        if "/" in token or token.endswith(".sock"):
            return cls(name=token, socket_path=token)
        host, sep, port_text = token.rpartition(":")
        if not sep or not host:
            raise DistError(
                f"node {token!r} is neither a unix socket path nor host:port"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise DistError(f"node {token!r} has a non-integer port") from None
        if not 0 < port < 65536:
            raise DistError(f"node {token!r} port out of range")
        return cls(name=token, host=host, port=port)

    def client(
        self,
        *,
        request_timeout: float = 120.0,
        retries: int = 2,
        retry_overloaded: bool = False,
    ) -> ServeClient:
        return ServeClient(
            socket_path=self.socket_path,
            host=self.host,
            port=self.port,
            request_timeout=request_timeout,
            retries=retries,
            retry_overloaded=retry_overloaded,
        )


def parse_nodes(text: str | Sequence[str]) -> list[NodeSpec]:
    """Parse a ``--nodes`` value (comma-separated, or an iterable of
    tokens) into specs; duplicates are an error (they would double the
    ring weight of one daemon)."""
    tokens = text.split(",") if isinstance(text, str) else list(text)
    specs = [NodeSpec.parse(t) for t in tokens if t.strip()]
    if not specs:
        raise DistError("the node list is empty")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise DistError(f"duplicate node in the node list: {names}")
    return specs


@dataclass
class _Item:
    """One dispatchable unit: a fingerprint-group leader job."""

    index: int
    job: Job
    fingerprint: str
    followers: list[int] = field(default_factory=list)
    attempts: int = 0
    #: Warm-start group key when this item is that group's gate leader
    #: (its settlement releases the held siblings).
    gate_key: str | None = None


class _Node:
    """Coordinator-side state for one daemon."""

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        self.queue: "queue.Queue[Any]" = queue.Queue()
        self.alive = False
        self.thread: threading.Thread | None = None
        self.stats: dict[str, Any] | None = None


class DistributedExecutor:
    """Shard campaign batches across ``repro.serve`` daemons.

    Satisfies the :class:`~repro.runner.executor.Executor` protocol, so
    ``run_campaign(spec, executor=DistributedExecutor(nodes))`` — or
    ``python -m repro campaign spec.json --nodes a.sock,b.sock`` — is
    all it takes to go multi-node.
    """

    def __init__(
        self,
        nodes: Sequence[NodeSpec] | str,
        *,
        warm_start: bool = False,
        max_attempts: int = 3,
        request_timeout_s: float | None = None,
        connect_timeout_s: float = 5.0,
        rejoin_interval_s: float = 2.0,
    ) -> None:
        specs = parse_nodes(nodes) if isinstance(nodes, str) else list(nodes)
        if not specs:
            raise DistError("the node list is empty")
        if max_attempts < 1:
            raise DistError(f"max_attempts must be >= 1, got {max_attempts}")
        self.specs = specs
        self.warm_start = warm_start
        self.max_attempts = max_attempts
        self.request_timeout_s = request_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.rejoin_interval_s = rejoin_interval_s
        #: Coordinator-side counters (dispatches, failovers, rejoins...);
        #: per-node daemon stats land in :attr:`node_stats` after a run.
        self.metrics = MetricsRegistry()
        self.node_stats: dict[str, dict[str, Any]] = {}

        # Per-run state (re-initialized at the top of run()).
        self._ring = None
        self._nodes: dict[str, _Node] = {}
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._outstanding = 0
        self._results: list[RunResult | None] = []
        self._failures: list[tuple[Job, str]] = []
        self._gates: dict[str, list[_Item]] = {}
        self._cache: ResultCache | None = None
        self._timeout_s: float | None = None
        self._progress: CampaignProgress | None = None

    # --- Public API -------------------------------------------------------

    def ping_all(self, timeout: float = 5.0) -> dict[str, bool]:
        """One liveness probe per node (the ``dist status`` CLI)."""
        alive: dict[str, bool] = {}
        for spec in self.specs:
            client = spec.client(request_timeout=timeout, retries=0)
            try:
                with client:
                    client.ping(timeout=timeout)
                alive[spec.name] = True
            except (ServeError, OSError):
                alive[spec.name] = False
        return alive

    def run(
        self,
        jobs: Sequence[Job],
        *,
        cache: ResultCache | None = None,
        timeout_s: float | None = None,
        progress: CampaignProgress | None = None,
    ) -> list[RunResult]:
        """Execute every job across the node ring; results align with
        ``jobs``. See the module docstring for the full semantics."""
        from repro.dist.ring import HashRing

        if progress is None:
            progress = CampaignProgress(len(jobs), echo=env_echo())
        self._cache = cache
        self._timeout_s = timeout_s
        self._progress = progress
        self._results = [None] * len(jobs)
        self._failures = []
        self._gates = {}
        self._done = threading.Event()
        self._nodes = {spec.name: _Node(spec) for spec in self.specs}
        self._ring = HashRing()
        self.node_stats = {}

        # Startup probe: at least one node must answer now; the rest can
        # rejoin later (the monitor keeps knocking).
        alive = self.ping_all(timeout=self.connect_timeout_s)
        for name, ok in alive.items():
            if ok:
                self._nodes[name].alive = True
                self._ring.add(name)
        if not len(self._ring):
            raise DistError(
                "no node answered a ping: " + ", ".join(sorted(alive))
            )
        if progress.workers is None:
            progress.workers = len(self._ring)

        # Fingerprint the batch: local cache hits settle immediately,
        # duplicate fingerprints collapse to one dispatch.
        items: list[_Item] = []
        by_fingerprint: dict[str, _Item] = {}
        for index, job in enumerate(jobs):
            fingerprint = job_fingerprint(job)
            leader = by_fingerprint.get(fingerprint)
            if leader is not None:
                leader.followers.append(index)
                continue
            if cache is not None:
                hit = cache.get(fingerprint)
                if hit is not None:
                    self._results[index] = hit
                    progress.job_finished(
                        job.describe(), cached=True, elapsed=0.0
                    )
                    self.metrics.counter("dist.cache_hits").inc()
                    # Later duplicates of this fingerprint re-probe the
                    # cache and hit it again — correct and simple.
                    continue
            item = _Item(index=index, job=job, fingerprint=fingerprint)
            by_fingerprint[fingerprint] = item
            items.append(item)

        self._outstanding = len(items)
        if not self._outstanding:
            return self._finish(jobs)

        # Warm-start gating: hold every prefix group behind its first
        # item; the leader's settlement replicates the captured prefix
        # across the ring before the group dispatches (step 6 above).
        ready = items
        if self.warm_start:
            ready = self._gate_warm_groups(items)

        monitor = threading.Thread(
            target=self._monitor_loop, name="dist-monitor", daemon=True
        )
        for node in self._nodes.values():
            if node.alive:
                self._start_dispatcher(node)
        with self._lock:
            for item in ready:
                self._enqueue(item)
        monitor.start()

        self._done.wait()
        for node in self._nodes.values():
            node.queue.put(_STOP)
        for node in self._nodes.values():
            if node.thread is not None:
                node.thread.join(timeout=10.0)
        monitor.join(timeout=self.rejoin_interval_s + 5.0)
        self._collect_node_stats()
        return self._finish(jobs)

    # --- Batch assembly ---------------------------------------------------

    def _gate_warm_groups(self, items: list[_Item]) -> list[_Item]:
        """Partition dispatchable items into gate leaders (dispatch now)
        and held group members (dispatch when their leader settles)."""
        from repro.snapshot.prefix import prefix_divergence_epoch, prefix_key

        epoch = prefix_divergence_epoch()
        ready: list[_Item] = []
        for item in items:
            if not prefix_eligible(item.job):
                ready.append(item)
                continue
            key = prefix_key(item.job, epoch)
            held = self._gates.get(key)
            if held is None:
                # First of its group: it leads, and its settlement
                # opens the gate.
                self._gates[key] = []
                item.gate_key = key
                ready.append(item)
            else:
                held.append(item)
        return ready

    # --- Routing and dispatch ---------------------------------------------

    def _enqueue(self, item: _Item) -> None:
        """Route one item onto a live node's queue (lock held)."""
        assert self._ring is not None
        try:
            name = self._ring.route(item.fingerprint)
        except DistError:
            self._settle_failure_locked(item, "no live nodes")
            return
        self.metrics.counter("dist.dispatched").inc()
        self._nodes[name].queue.put(item)

    def _request_timeout(self) -> float:
        if self.request_timeout_s is not None:
            return self.request_timeout_s
        if self._timeout_s is not None:
            # Headroom over the per-job deadline: queue wait + transfer.
            return self._timeout_s + 30.0
        return 600.0

    def _start_dispatcher(self, node: _Node) -> None:
        node.thread = threading.Thread(
            target=self._dispatch_loop,
            args=(node,),
            name=f"dist-{node.spec.name}",
            daemon=True,
        )
        node.thread.start()

    def _dispatch_loop(self, node: _Node) -> None:
        client = node.spec.client(
            request_timeout=self._request_timeout(),
            retries=2,
            retry_overloaded=True,
        )
        with client:
            while True:
                entry = node.queue.get()
                if entry is _STOP:
                    return
                item: _Item = entry
                payload: dict[str, Any] = {"job": item.job.to_dict()}
                if self._timeout_s is not None:
                    payload["deadline_s"] = self._timeout_s
                began = time.monotonic()
                try:
                    response = client.request("run", payload)
                except (Overloaded, RequestFailed) as exc:
                    if isinstance(exc, Overloaded) or (
                        exc.code in _DETERMINISTIC_CODES
                    ):
                        # Overloaded only surfaces here once the client
                        # exhausted retry_after hints — treat both as
                        # terminal for this job, not for the node.
                        with self._lock:
                            self._settle_failure_locked(item, str(exc))
                    else:
                        # bad-request/oversized/unknown-verb: the node
                        # cannot take this job; shutting-down or any
                        # surprise code: the node is going away.
                        self._node_down(node, item, str(exc))
                        return
                except (ServerUnavailable, ServeTimeout, ServeError, OSError) as exc:
                    self._node_down(node, item, str(exc))
                    return
                else:
                    self._settle_success(
                        node, item, response, time.monotonic() - began
                    )

    # --- Settlement -------------------------------------------------------

    def _settle_success(
        self,
        node: _Node,
        item: _Item,
        response: Mapping[str, Any],
        elapsed: float,
    ) -> None:
        envelope = response.get("result")
        if not isinstance(envelope, Mapping):
            self._node_down(node, item, "run response carried no result")
            return
        try:
            result = result_from_dict(envelope)
        except Exception as exc:  # undecodable: a node-side bug
            self._node_down(node, item, f"undecodable result: {exc}")
            return
        assert self._progress is not None
        with self._lock:
            self._results[item.index] = result
            if self._cache is not None:
                self._cache.put_envelope(
                    item.fingerprint, dict(envelope), job=item.job
                )
            cached = bool(response.get("cached"))
            self.metrics.counter(
                "dist.remote_cache_hits" if cached else "dist.fresh_results"
            ).inc()
            self._progress.job_finished(
                item.job.describe(),
                cached=cached,
                elapsed=float(response.get("service_s", elapsed)),
            )
            for follower in item.followers:
                self._results[follower] = result_from_dict(envelope)
                self._progress.job_deduped(item.job.describe())
        self._after_settle(item, node)

    def _settle_failure_locked(self, item: _Item, reason: str) -> None:
        """Record a terminal failure (lock held); the batch keeps going."""
        assert self._progress is not None
        self.metrics.counter("dist.terminal_failures").inc()
        self._failures.append((item.job, reason))
        self._progress.job_failed(item.job.describe(), reason)
        for _ in item.followers:
            self._failures.append((item.job, reason))
            self._progress.job_failed(item.job.describe(), reason)
        if item.gate_key is not None:
            # A failed gate leader still opens its gate — the held group
            # members dispatch cold rather than hang on a prefix that
            # will never be captured. (No recursion risk: siblings never
            # carry a gate_key of their own.)
            for sibling in self._gates.pop(item.gate_key, []):
                self._enqueue(sibling)
        self._finish_item_locked(item)

    def _finish_item_locked(self, item: _Item) -> None:
        self._outstanding -= 1
        if self._outstanding <= 0:
            self._done.set()

    def _after_settle(self, item: _Item, node: _Node | None) -> None:
        """Post-settlement bookkeeping: open this item's warm gate (if
        it led one), then count it done."""
        if item.gate_key is not None:
            self._open_gate(item, node)
        with self._lock:
            self._finish_item_locked(item)

    # --- Failover ----------------------------------------------------------

    def _node_down(self, node: _Node, inflight: _Item | None, reason: str) -> None:
        """Mark a node dead, rehash its backlog, retry its in-flight job."""
        drained: list[_Item] = []
        with self._lock:
            if node.alive:
                node.alive = False
                assert self._ring is not None
                self._ring.remove(node.spec.name)
                self.metrics.counter("dist.node_failures").inc()
            while True:
                try:
                    entry = node.queue.get_nowait()
                except queue.Empty:
                    break
                if entry is not _STOP:
                    drained.append(entry)
            if inflight is not None:
                # The attempt consumed this item's turn; queued items
                # never ran here and re-route without charge.
                inflight.attempts += 1
                self.metrics.counter("dist.failovers").inc()
                self._retry_locked(inflight, reason)
            for item in drained:
                self.metrics.counter("dist.failovers").inc()
                self._retry_locked(item, f"node {node.spec.name} down", charge=False)

    def _retry_locked(self, item: _Item, reason: str, charge: bool = True) -> None:
        assert self._progress is not None
        if charge and item.attempts >= self.max_attempts:
            self._settle_failure_locked(
                item, f"failed on {item.attempts} nodes: {reason}"
            )
            return
        self.metrics.counter("dist.retries").inc()
        self._progress.job_retried(item.job.describe(), reason)
        self._enqueue(item)

    def _monitor_loop(self) -> None:
        """Knock on dead nodes until the batch completes; a node that
        answers again rejoins the ring with a fresh dispatcher."""
        while not self._done.wait(self.rejoin_interval_s):
            for node in self._nodes.values():
                if node.alive or self._done.is_set():
                    continue
                client = node.spec.client(
                    request_timeout=self.connect_timeout_s, retries=0
                )
                try:
                    with client:
                        client.ping(timeout=self.connect_timeout_s)
                except (ServeError, OSError):
                    continue
                with self._lock:
                    if not node.alive and not self._done.is_set():
                        node.alive = True
                        assert self._ring is not None
                        self._ring.add(node.spec.name)
                        self.metrics.counter("dist.rejoins").inc()
                        self._start_dispatcher(node)

    # --- Warm-start replication --------------------------------------------

    def _open_gate(self, item: _Item, node: _Node | None) -> None:
        """Replicate the gate leader's captured prefix across the ring,
        then release the held group members for normal dispatch."""
        assert item.gate_key is not None
        with self._lock:
            held = self._gates.pop(item.gate_key, [])
        if node is not None and held:
            self._replicate_prefix(item.gate_key, node)
        with self._lock:
            for sibling in held:
                self._enqueue(sibling)

    def _replicate_prefix(self, key: str, source: _Node) -> None:
        """Pull the prefix blob off the capturing node and push it to
        every other live node. All failures are soft — a node without
        the prefix just runs its group members cold."""
        blob: bytes | None = None
        try:
            client = source.spec.client(
                request_timeout=self._request_timeout(), retries=1
            )
            with client:
                blob = client.prefix_fetch(key)
        except (ServeError, OSError):
            blob = None
        if blob is None:
            # The capture window closed before the threshold poll (tiny
            # run, early trigger) or the node has no store: degrade cold.
            self.metrics.counter("dist.prefix_fetch_misses").inc()
            return
        with self._lock:
            targets = [
                n for n in self._nodes.values()
                if n.alive and n.spec.name != source.spec.name
            ]
        for target in targets:
            try:
                client = target.spec.client(
                    request_timeout=self._request_timeout(), retries=1
                )
                with client:
                    client.prefix_put(key, blob)
                self.metrics.counter("dist.prefix_transfers").inc()
            except (ServeError, OSError):
                self.metrics.counter("dist.prefix_transfer_failures").inc()

    # --- Wrap-up -----------------------------------------------------------

    def _collect_node_stats(self) -> None:
        for node in self._nodes.values():
            if not node.alive:
                continue
            try:
                client = node.spec.client(request_timeout=10.0, retries=0)
                with client:
                    node.stats = client.stats()
            except (ServeError, OSError):
                node.stats = None
            if node.stats is not None:
                self.node_stats[node.spec.name] = node.stats

    def _finish(self, jobs: Sequence[Job]) -> list[RunResult]:
        if self._failures:
            job, reason = self._failures[0]
            raise CampaignJobError(
                f"{len(self._failures)} of {len(jobs)} jobs failed "
                f"terminally; first: {job.describe()}: {reason}"
            )
        results = self._results
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]
