"""Multi-node sharded campaigns (docs/DIST.md).

A :class:`DistributedExecutor` shards a campaign's job batch across N
``repro.serve`` daemons by consistent-hashing each job's content
fingerprint onto a :class:`HashRing` of nodes, streams results back into
the normal local cache/results layout, and survives node loss with
bounded retry + rehash failover. It satisfies the
:class:`~repro.runner.executor.Executor` protocol, so it plugs straight
into ``run_campaign(spec, executor=...)`` or
``python -m repro campaign spec.json --nodes a.sock,host:7341``.
"""

from repro.dist.coordinator import (
    DistributedExecutor,
    NodeSpec,
    parse_nodes,
)
from repro.dist.ring import DEFAULT_REPLICAS, HashRing
from repro.errors import DistError

__all__ = [
    "DEFAULT_REPLICAS",
    "DistError",
    "DistributedExecutor",
    "HashRing",
    "NodeSpec",
    "parse_nodes",
]
