"""Consistent hashing for job→node routing.

The coordinator routes every job by its content fingerprint, so the
same job lands on the same node run after run — that is what makes the
per-node result caches and warm-start prefix stores *accumulate*
instead of thrash. A plain ``hash(key) % len(nodes)`` would satisfy a
single run, but adding or losing one node would reshuffle nearly every
assignment and cold-start every node-local cache. The classic fix is a
hash ring with virtual nodes: each node owns many pseudo-random points
on a circle, a key routes to the first point clockwise of its own hash,
and removing a node reassigns *only the keys that pointed at it* —
≈ 1/N of the keyspace — while everything else stays put.

Everything is derived from SHA-256, so routing is deterministic across
processes and hosts (no ``PYTHONHASHSEED`` dependence) — a re-run of a
campaign against the same node list shards identically, which the
bit-for-bit reproducibility contract relies on.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import DistError

#: Virtual points per node. Enough that a 2-node ring splits the
#: keyspace within a few percent of evenly; cheap enough to rebuild on
#: every membership change (rings here hold a handful of nodes).
DEFAULT_REPLICAS = 64


def _point(data: str) -> int:
    return int.from_bytes(hashlib.sha256(data.encode()).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over node names."""

    def __init__(
        self, nodes: list[str] | None = None, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise DistError(f"ring replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes or []:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def _rebuild(self) -> None:
        pairs = sorted(
            (_point(f"{node}#{i}"), node)
            for node in self._nodes
            for i in range(self.replicas)
        )
        self._points = [p for p, _ in pairs]
        self._owners = [o for _, o in pairs]

    def add(self, node: str) -> None:
        """Add a node (idempotent); ≈ 1/N of keys move to it."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove a node (idempotent); only its keys are reassigned."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._rebuild()

    def route(self, key: str) -> str:
        """The node owning ``key`` — the first ring point clockwise of
        its hash (wrapping past the top of the circle)."""
        if not self._nodes:
            raise DistError("cannot route: the ring has no live nodes")
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]
