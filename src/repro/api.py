"""The stable programmatic surface, in one import.

``repro.api`` re-exports exactly what docs/API.md documents, so
downstream code can write ``from repro.api import run_experiment,
Settings, DistributedExecutor`` without memorizing the package layout.
The contract: every name documented in docs/API.md imports from here
(tests/test_api.py parses the doc's code fences and checks), and nothing
prefixed ``_`` is stable anywhere in the package.

The deeper modules stay importable directly — this facade adds a name,
it never moves one.
"""

from __future__ import annotations

# Core: configuration, simulation, experiment drivers.
from repro import __version__
from repro.core import check_invariants
from repro.core.config import (
    MachineConfig,
    QuarantinePolicy,
    RevokerKind,
    SimulationConfig,
)
from repro.core.experiment import (
    compare_strategies,
    overhead,
    run_batches,
    run_experiment,
)
from repro.core.metrics import LatencySample, RunResult
from repro.core.simulation import Simulation

# Settings: the one typed view of every REPRO_* environment knob.
from repro.settings import Settings

# Errors: the catchable roots.
from repro.errors import ConfigError, DistError, ReproError

# Campaign runner: declarative sweeps, caching, executors.
from repro.runner import (
    CampaignProgress,
    CampaignSpec,
    Executor,
    Job,
    PoolExecutor,
    ResultCache,
    WorkloadSpec,
    run_campaign,
    run_jobs,
)

# Distributed campaigns: sharding across serve daemons.
from repro.dist import DistributedExecutor, HashRing, NodeSpec, parse_nodes

# Serving: the daemon's client side.
from repro.serve.client import ServeClient

__all__ = [
    "CampaignProgress",
    "CampaignSpec",
    "ConfigError",
    "DistError",
    "DistributedExecutor",
    "Executor",
    "HashRing",
    "Job",
    "LatencySample",
    "MachineConfig",
    "NodeSpec",
    "PoolExecutor",
    "QuarantinePolicy",
    "ReproError",
    "ResultCache",
    "RevokerKind",
    "RunResult",
    "ServeClient",
    "Settings",
    "Simulation",
    "SimulationConfig",
    "WorkloadSpec",
    "check_invariants",
    "compare_strategies",
    "overhead",
    "parse_nodes",
    "run_batches",
    "run_campaign",
    "run_experiment",
    "run_jobs",
    "__version__",
]
