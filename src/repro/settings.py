"""``repro.settings`` — the one place the environment is read.

Every ``REPRO_*`` knob the package honors is declared here, parsed here,
and validated here. The rest of the codebase never touches
``os.environ`` for configuration (a lint test pins that): call sites use
the per-field accessor functions below, which re-read the environment on
every call — the long-standing contract that lets tests flip a knob
per-case with ``monkeypatch.setenv`` and lets the serve daemon export
config *pre-fork* so workers inherit it.

:class:`Settings` is the same 14 knobs as one frozen, typed value:

- :meth:`Settings.from_env` is the single parse point (validation and
  typed defaults included) — call it with no argument for the process
  environment, or with any mapping (a campaign spec's ``env`` block, a
  remote node's shipped config);
- :meth:`Settings.to_env` is the inverse: the minimal ``{VAR: value}``
  dict that reproduces the settings, suitable for shipping to a remote
  ``repro.serve`` node or exporting before a fork
  (``from_env(to_env(s)) == s`` is pinned by a hypothesis test);
- :meth:`Settings.apply` writes that dict into ``os.environ`` (and
  *clears* managed vars the settings leave at default), which is how the
  serve daemon and the dist coordinator hand a whole configuration to
  child processes at once.

Precedence everywhere is **CLI flag > environment > default**: the CLI
passes explicit values down as arguments; anything left ``None`` falls
back to the accessor (environment), which falls back to the typed
default.

The knobs:

======================== =============================================
``REPRO_JOBS``           campaign worker processes (0 = all CPUs; 1)
``REPRO_JOB_TIMEOUT``    seconds per pooled job (none)
``REPRO_CACHE_DIR``      result cache root (~/.cache/repro/results)
``REPRO_TRACE_DIR``      per-job observability trace artifacts (off)
``REPRO_SNAPSHOT_DIR``   per-job checkpoint artifacts (off)
``REPRO_PREFIX_DIR``     warm-start prefix store (off)
``REPRO_PREFIX_EPOCH``   warm-start divergence epoch (0)
``REPRO_PROGRESS``       stream per-job progress lines (off)
``REPRO_SCALAR``         force the scalar reference fast paths (off)
``REPRO_SERVE_WORKERS``  serve daemon warm workers (2)
``REPRO_SERVE_QUEUE``    serve admission bound (64)
``REPRO_SERVE_JOB_TIMEOUT`` seconds per job on a serve worker (none)
``REPRO_PERF_INJECT``    multiply deterministic bench samples (off)
``REPRO_BENCH_FORCE``    overwrite benchmark reports cross-commit (off)
======================== =============================================
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ConfigError

# --- Field parsers ----------------------------------------------------------
#
# Each knob gets one parser from raw string to typed value; the error
# message always names the variable and the offending text, so a typo'd
# environment fails loudly at the first read, not deep in a run.


def _parse_int(var: str, raw: str, minimum: int) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(f"{var}={raw!r} is not an integer") from None
    if value < minimum:
        raise ConfigError(f"{var} must be >= {minimum}, got {value}")
    return value


def _parse_timeout(var: str, raw: str) -> float | None:
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(f"{var}={raw!r} is not a number") from None
    if value <= 0:
        raise ConfigError(f"{var} must be > 0 seconds, got {value}")
    return value


def _parse_path(var: str, raw: str) -> Path | None:
    return Path(raw) if raw else None


def _parse_flag(var: str, raw: str) -> bool:
    return raw not in ("0", "")


def _parse_inject(var: str, raw: str) -> float | None:
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ConfigError(f"{var}={raw!r} is not a number") from None


@dataclass(frozen=True)
class _Field:
    """One knob: its env var, parser, default, and serializer.

    ``empty_unsets`` keeps the historical per-knob semantics of an
    *empty* value: most knobs treat ``VAR=""`` the same as unset, but
    the always-defaulted integer knobs (``REPRO_JOBS``,
    ``REPRO_SERVE_WORKERS``, ``REPRO_SERVE_QUEUE``) have always rejected
    it loudly as a parse error.
    """

    var: str
    parse: Callable[[str, str], Any]
    default: Any
    to_str: Callable[[Any], str]
    empty_unsets: bool = True


def _str_plain(value: Any) -> str:
    return str(value)


def _str_flag(value: Any) -> str:
    return "1" if value else "0"


#: Field name -> knob declaration. The authoritative knob catalog: the
#: accessors, :meth:`Settings.from_env`, and :meth:`Settings.to_env` are
#: all generated from it, so a new knob is one line here plus a field on
#: :class:`Settings`.
FIELDS: dict[str, _Field] = {
    "jobs": _Field(
        "REPRO_JOBS", lambda v, r: _parse_int(v, r, 0), 1, _str_plain,
        empty_unsets=False,
    ),
    "job_timeout_s": _Field("REPRO_JOB_TIMEOUT", _parse_timeout, None, _str_plain),
    "cache_dir": _Field("REPRO_CACHE_DIR", _parse_path, None, _str_plain),
    "trace_dir": _Field("REPRO_TRACE_DIR", _parse_path, None, _str_plain),
    "snapshot_dir": _Field("REPRO_SNAPSHOT_DIR", _parse_path, None, _str_plain),
    "prefix_dir": _Field("REPRO_PREFIX_DIR", _parse_path, None, _str_plain),
    "prefix_epoch": _Field(
        "REPRO_PREFIX_EPOCH", lambda v, r: _parse_int(v, r, 0), 0, _str_plain
    ),
    "progress": _Field("REPRO_PROGRESS", _parse_flag, False, _str_flag),
    "scalar": _Field("REPRO_SCALAR", _parse_flag, False, _str_flag),
    "serve_workers": _Field(
        "REPRO_SERVE_WORKERS", lambda v, r: _parse_int(v, r, 1), 2, _str_plain,
        empty_unsets=False,
    ),
    "serve_queue": _Field(
        "REPRO_SERVE_QUEUE", lambda v, r: _parse_int(v, r, 1), 64, _str_plain,
        empty_unsets=False,
    ),
    "serve_job_timeout_s": _Field(
        "REPRO_SERVE_JOB_TIMEOUT", _parse_timeout, None, _str_plain
    ),
    "perf_inject": _Field("REPRO_PERF_INJECT", _parse_inject, None, _str_plain),
    "bench_force": _Field("REPRO_BENCH_FORCE", _parse_flag, False, _str_flag),
}

#: Every environment variable this module owns.
MANAGED_VARS: tuple[str, ...] = tuple(f.var for f in FIELDS.values())


def _read(field: str, environ: Mapping[str, str] | None = None) -> Any:
    env = os.environ if environ is None else environ
    decl = FIELDS[field]
    raw = env.get(decl.var)
    if raw is None or (raw == "" and decl.empty_unsets):
        return decl.default
    return decl.parse(decl.var, raw)


@dataclass(frozen=True)
class Settings:
    """Every ``REPRO_*`` knob as one frozen, typed, serializable value.

    ``jobs`` keeps the declared value (0 = all CPUs); resolve it with
    :meth:`max_workers` at the point of use so the value round-trips
    through :meth:`to_env` machine-independently.
    """

    jobs: int = 1
    job_timeout_s: float | None = None
    cache_dir: Path | None = None
    trace_dir: Path | None = None
    snapshot_dir: Path | None = None
    prefix_dir: Path | None = None
    prefix_epoch: int = 0
    progress: bool = False
    scalar: bool = False
    serve_workers: int = 2
    serve_queue: int = 64
    serve_job_timeout_s: float | None = None
    perf_inject: float | None = None
    bench_force: bool = False

    def __post_init__(self) -> None:
        # The same validation whether a value arrives from the
        # environment or from code constructing Settings directly.
        if self.jobs < 0:
            raise ConfigError(f"REPRO_JOBS must be >= 0, got {self.jobs}")
        if self.prefix_epoch < 0:
            raise ConfigError(
                f"REPRO_PREFIX_EPOCH must be >= 0, got {self.prefix_epoch}"
            )
        if self.serve_workers < 1:
            raise ConfigError(
                f"REPRO_SERVE_WORKERS must be >= 1, got {self.serve_workers}"
            )
        if self.serve_queue < 1:
            raise ConfigError(
                f"REPRO_SERVE_QUEUE must be >= 1, got {self.serve_queue}"
            )
        for var, value in (
            ("REPRO_JOB_TIMEOUT", self.job_timeout_s),
            ("REPRO_SERVE_JOB_TIMEOUT", self.serve_job_timeout_s),
        ):
            if value is not None and value <= 0:
                raise ConfigError(f"{var} must be > 0 seconds, got {value}")

    # --- Construction -----------------------------------------------------

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "Settings":
        """Parse one :class:`Settings` from ``environ`` (default: the
        process environment). The single parse point: every knob is
        validated, every absent knob gets its typed default."""
        return cls(**{name: _read(name, environ) for name in FIELDS})

    # --- Serialization ----------------------------------------------------

    def to_env(self) -> dict[str, str]:
        """The minimal environment dict reproducing these settings.

        Only non-default knobs appear, so the dict composes cleanly with
        an existing environment; ``Settings.from_env(s.to_env()) == s``.
        This is the shipping format for remote nodes: start a
        ``repro.serve`` daemon under this environment and it behaves as
        configured here.
        """
        env: dict[str, str] = {}
        for name, decl in FIELDS.items():
            value = getattr(self, name)
            if value != decl.default:
                env[decl.var] = decl.to_str(value)
        return env

    def apply(self) -> None:
        """Export these settings into ``os.environ``.

        Managed vars at their default are *removed*, so the resulting
        process environment means exactly this Settings value — the
        pre-fork export the serve daemon relies on (workers inherit the
        environment wholesale).
        """
        wanted = self.to_env()
        for var in MANAGED_VARS:
            if var in wanted:
                os.environ[var] = wanted[var]
            else:
                os.environ.pop(var, None)

    def replace(self, **updates: Any) -> "Settings":
        """A copy with ``updates`` applied (validation re-runs)."""
        return dataclasses.replace(self, **updates)

    # --- Derived ----------------------------------------------------------

    def max_workers(self) -> int:
        """``jobs`` resolved: 0 means every CPU."""
        return self.jobs if self.jobs > 0 else (os.cpu_count() or 1)


# --- Per-field accessors ----------------------------------------------------
#
# These re-read the environment on every call (two dict probes plus a
# tiny parse), preserving the monkeypatch-friendly semantics the old
# scattered ``os.environ.get`` sites had — and keeping error locality: a
# malformed REPRO_JOBS cannot break a REPRO_SCALAR query.


def max_workers() -> int:
    """Campaign worker count from ``REPRO_JOBS`` (0 = all CPUs)."""
    jobs = _read("jobs")
    return jobs if jobs > 0 else (os.cpu_count() or 1)


def job_timeout_s() -> float | None:
    """Per-job pool timeout in seconds (``REPRO_JOB_TIMEOUT``)."""
    return _read("job_timeout_s")


def cache_dir() -> Path | None:
    """Result cache root override (``REPRO_CACHE_DIR``)."""
    return _read("cache_dir")


def trace_dir() -> Path | None:
    """Per-job trace artifact directory (``REPRO_TRACE_DIR``)."""
    return _read("trace_dir")


def snapshot_dir() -> Path | None:
    """Per-job checkpoint directory (``REPRO_SNAPSHOT_DIR``)."""
    return _read("snapshot_dir")


def prefix_dir() -> Path | None:
    """Warm-start prefix store root (``REPRO_PREFIX_DIR``)."""
    return _read("prefix_dir")


def prefix_epoch() -> int:
    """Warm-start divergence epoch (``REPRO_PREFIX_EPOCH``)."""
    return _read("prefix_epoch")


def progress_enabled() -> bool:
    """Whether per-job progress lines stream (``REPRO_PROGRESS``)."""
    return _read("progress")


def scalar_mode() -> bool:
    """Whether ``REPRO_SCALAR`` forces the scalar reference paths."""
    return _read("scalar")


def serve_workers() -> int:
    """Serve daemon warm worker count (``REPRO_SERVE_WORKERS``)."""
    return _read("serve_workers")


def serve_queue() -> int:
    """Serve admission bound (``REPRO_SERVE_QUEUE``)."""
    return _read("serve_queue")


def serve_job_timeout_s() -> float | None:
    """Seconds one job may hold a serve worker (``REPRO_SERVE_JOB_TIMEOUT``)."""
    return _read("serve_job_timeout_s")


def perf_inject() -> float | None:
    """Deterministic-sample multiplier for gate drills (``REPRO_PERF_INJECT``)."""
    return _read("perf_inject")


def bench_force() -> bool:
    """Whether cross-commit report overwrites are allowed (``REPRO_BENCH_FORCE``)."""
    return _read("bench_force")


def set_env(field: str, value: Any) -> None:
    """Write one knob into ``os.environ`` (the CLI's pre-fork plumbing).

    ``None`` clears the variable. Values are serialized through the
    field's canonical form, so a later accessor read agrees exactly.
    """
    decl = FIELDS[field]
    if value is None:
        os.environ.pop(decl.var, None)
        return
    os.environ[decl.var] = decl.to_str(value)
