"""The vectorized/scalar execution-mode switch.

The simulation's hot paths — the revokers' per-page granule scan and the
cache's page/range streaming — each exist twice: a batched, numpy/
C-speed fast path (the default) and the original per-element scalar
loop, kept as the executable reference model. Both produce bit-identical
results (counters, cycles, cache state); the equivalence suite in
``tests/test_sweep_equivalence.py`` pins that.

Set ``REPRO_SCALAR=1`` to force every fast path back onto the scalar
reference implementation — for debugging a suspected fast-path bug, for
perf comparison (``benchmarks/bench_sweep_micro.py`` measures both
sides), or just to read the model the vector code must match.

The flag is re-read on every query so tests can flip it per-case with
``monkeypatch.setenv``; the lookup is two dict probes, far below the
cost of the work it gates.
"""

from __future__ import annotations

from repro import settings


def scalar_mode() -> bool:
    """Whether ``REPRO_SCALAR`` forces the scalar reference paths."""
    return settings.scalar_mode()
